package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"verikern/internal/obs"
	"verikern/internal/soak"
)

// WorkerOptions tunes RunWorker.
type WorkerOptions struct {
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
	// Retries is the failed-connection-attempt count reported in the
	// hello; RunWorkerLoop maintains it, direct callers may leave 0.
	Retries int
	// FrameTimeout is the per-frame read/write deadline on the worker
	// side (applied only when the conn supports deadlines). 0 disables
	// — in-process harnesses keep the old semantics.
	FrameTimeout time.Duration
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// workerOutcome classifies how one worker connection ended, so a
// reconnect loop can tell "retry" from "no more work".
type workerOutcome int

const (
	// workerErr: transport or protocol failure — reconnect with backoff.
	workerErr workerOutcome = iota
	// workerDone: the leased shard completed (or drained) cleanly.
	workerDone
	// workerNoShard: the coordinator had nothing to lease.
	workerNoShard
)

// RunWorker drives one fleet worker over an established connection:
// hello, receive the shard lease, deterministically fast-forward to
// the merged checkpoint (a restarted worker regenerates — without
// streaming — exactly the ops the coordinator already merged), then
// step-and-stream delta batches until the shard budget is spent, the
// coordinator drains, or ctx is cancelled. The final batch is marked
// Final and the connection closed.
func RunWorker(ctx context.Context, conn io.ReadWriteCloser, opt WorkerOptions) error {
	_, err := runWorkerConn(ctx, conn, opt)
	return err
}

// RunWorkerLoop keeps a worker attached to a coordinator across
// connection failures: dial, run a session, and on any transport or
// protocol error reconnect with jittered exponential backoff (capped,
// context-cancellable). It returns nil once the coordinator reports no
// shard to lease (campaign complete or draining), or ctx's error on
// cancellation. Completed shards reset the backoff and re-dial
// immediately — one worker process can chew through several shards.
func RunWorkerLoop(ctx context.Context, dial func(ctx context.Context) (io.ReadWriteCloser, error), opt WorkerOptions) error {
	bo := NewBackoff(50*time.Millisecond, 2*time.Second, uint64(os.Getpid()))
	retries := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := dial(ctx)
		if err != nil {
			retries++
			opt.logf("fleet worker: dial failed (%v), retry %d", err, retries)
			if !bo.Sleep(ctx) {
				return ctx.Err()
			}
			continue
		}
		o := opt
		o.Retries = retries
		outcome, err := runWorkerConn(ctx, conn, o)
		switch outcome {
		case workerNoShard:
			return nil
		case workerDone:
			retries = 0
			bo.Reset()
		default:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			retries++
			opt.logf("fleet worker: session failed (%v), reconnect %d", err, retries)
			if !bo.Sleep(ctx) {
				return ctx.Err()
			}
		}
	}
}

// runWorkerConn is one worker session; see RunWorker.
func runWorkerConn(ctx context.Context, conn io.ReadWriteCloser, opt WorkerOptions) (workerOutcome, error) {
	defer conn.Close()
	armWrite(conn, opt.FrameTimeout)
	if err := writeMsg(conn, msgHello, Hello{Proto: protoVersion, PID: os.Getpid(), Retries: opt.Retries}); err != nil {
		return workerErr, fmt.Errorf("fleet worker: hello: %w", err)
	}
	armRead(conn, opt.FrameTimeout)
	t, body, err := readMsg(conn)
	if err != nil {
		return workerErr, fmt.Errorf("fleet worker: awaiting assign: %w", err)
	}
	if t == msgDrain {
		opt.logf("fleet worker: no shard available, exiting")
		return workerNoShard, nil
	}
	if t != msgAssign {
		return workerErr, fmt.Errorf("fleet worker: unexpected message type %d", t)
	}
	var as Assign
	if err := json.Unmarshal(body, &as); err != nil {
		return workerErr, fmt.Errorf("fleet worker: bad assign: %w", err)
	}
	// The assign read's deadline is absolute; left armed it would fire
	// FrameTimeout after the hello and kill the drain watcher's read on
	// a perfectly healthy session (the coordinator legitimately sends
	// nothing between assign and drain). Clear it — a dead connection
	// still surfaces as EOF/reset on the watcher's read, and the write
	// side keeps its per-frame deadline.
	armRead(conn, 0)
	cfg := as.Spec.SoakConfig().WithDefaults()
	if cfg.MachineReplay {
		// The plan never crosses the wire; the analysis pipeline is
		// deterministic, so a local rebuild yields the identical plan.
		plan, err := soak.BuildReplayPlan(ctx, cfg)
		if err != nil {
			return workerErr, fmt.Errorf("fleet worker: replay plan: %w", err)
		}
		cfg.Replay = plan
	}
	rn, err := soak.NewRunner(cfg, as.Shard)
	if err != nil {
		return workerErr, fmt.Errorf("fleet worker: shard %d: %w", as.Shard, err)
	}
	opt.logf("fleet worker %d: shard %d, checkpoint %d/%d", os.Getpid(), as.Shard, as.Checkpoint, as.Budget)

	// Fast-forward: replay the already-merged prefix silently. The op
	// stream is seeded per shard, so this reconstructs the exact
	// kernel and tracer state the previous incarnation had at the
	// checkpoint — including the capture list, which the cursor then
	// baselines so nothing is re-streamed.
	const ffChunk = 256
	for rn.Ops() < as.Checkpoint {
		if err := ctx.Err(); err != nil {
			return workerErr, err
		}
		n := as.Checkpoint - rn.Ops()
		if n > ffChunk {
			n = ffChunk
		}
		if err := rn.Step(int(n)); err != nil {
			return workerErr, fmt.Errorf("fleet worker: fast-forward: %w", err)
		}
	}
	cur := newCursor(as.Shard)
	cur.config = as.Spec.ConfigKey
	if as.Checkpoint > 0 {
		// Restart: everything up to the checkpoint — including the
		// boot-time trace events — was merged by the previous
		// incarnation's batches; baseline it all away.
		cur.sync(rn)
	}
	// Fresh shard: keep the zero baseline, so the first batch carries
	// the boot-time events (object creation emits create-chunk events
	// before the first op) exactly as an in-process AddTracer would.

	// The reader goroutine watches for the coordinator's drain (or a
	// dead connection) while the main loop steps the kernel. Corrupt
	// frames (a faulty link can garble the drain direction too) are
	// tolerated up to a budget of consecutive strikes before the
	// connection is declared lost; a well-formed frame resets the
	// count, mirroring the coordinator's strike counter, so a
	// long-lived noisy link is not eventually condemned by its
	// cumulative history.
	drainCh := make(chan struct{})
	lostCh := make(chan struct{})
	go func() {
		corrupt := 0
		for {
			t, _, err := readMsg(conn)
			if err != nil {
				if errors.Is(err, errCorruptFrame) {
					if corrupt++; corrupt <= 32 {
						continue
					}
				}
				close(lostCh)
				return
			}
			corrupt = 0
			if t == msgDrain {
				close(drainCh)
				return
			}
		}
	}()

	batchOps := as.BatchOps
	if batchOps <= 0 {
		batchOps = 512
	}
	for {
		final := false
		select {
		case <-ctx.Done():
			final = true
		case <-drainCh:
			final = true
		case <-lostCh:
			return workerErr, fmt.Errorf("fleet worker: connection lost")
		default:
		}
		remaining := uint64(0)
		if as.Budget > rn.Ops() {
			remaining = as.Budget - rn.Ops()
		}
		if remaining == 0 {
			final = true
		}
		if !final {
			n := uint64(batchOps)
			if n > remaining {
				n = remaining
			}
			if err := rn.Step(int(n)); err != nil {
				return workerErr, fmt.Errorf("fleet worker: shard %d: %w", as.Shard, err)
			}
			if rn.Ops() >= as.Budget {
				final = true
			}
		}
		b, err := cur.batch(rn)
		if err != nil {
			return workerErr, fmt.Errorf("fleet worker: delta: %w", err)
		}
		b.Final = final
		armWrite(conn, opt.FrameTimeout)
		if err := writeMsg(conn, msgBatch, b); err != nil {
			return workerErr, fmt.Errorf("fleet worker: stream: %w", err)
		}
		if final {
			opt.logf("fleet worker %d: shard %d done at %d ops", os.Getpid(), as.Shard, rn.Ops())
			return workerDone, nil
		}
	}
}

// cursor tracks what a worker has already streamed, so each batch
// carries exactly the window since the previous one. After a restart's
// fast-forward, sync re-baselines everything (including the capture
// count) at the merged checkpoint.
type cursor struct {
	shard int
	// config is the spec's ConfigKey, echoed on every batch so the
	// coordinator can refuse deltas from another configuration.
	config       string
	prevOps      uint64
	prevIRQ      obs.Histogram
	prevSrc      []obs.Histogram
	prevKinds    []uint64
	prevEmitted  uint64
	prevDropped  uint64
	prevViol     uint64
	prevNearMax  uint64
	sentCaptures int
}

func newCursor(shard int) *cursor {
	return &cursor{
		shard:     shard,
		prevSrc:   make([]obs.Histogram, obs.NumOps()),
		prevKinds: make([]uint64, obs.NumKinds()),
	}
}

// sync baselines the cursor at the runner's current state: everything
// up to here is considered already merged upstream.
func (c *cursor) sync(rn *soak.Runner) {
	tr := rn.Tracer()
	c.prevOps = rn.Ops()
	c.prevIRQ = tr.Latencies()
	for i := range c.prevSrc {
		c.prevSrc[i] = obs.Histogram{}
	}
	for _, sl := range tr.SourceLatencies() {
		c.prevSrc[sl.Source] = sl.Hist
	}
	for k := range c.prevKinds {
		c.prevKinds[k] = tr.Count(obs.Kind(k))
	}
	c.prevEmitted = tr.Emitted()
	c.prevDropped = tr.Dropped()
	st := rn.SentinelStatus()
	c.prevViol = st.Violations
	c.prevNearMax = st.NearMax
	c.sentCaptures = len(rn.Captures())
}

// batch extracts the delta window since the last batch (or sync) and
// advances the cursor.
func (c *cursor) batch(rn *soak.Runner) (Batch, error) {
	tr := rn.Tracer()
	b := Batch{
		Shard:     c.shard,
		Config:    c.config,
		FromOps:   c.prevOps,
		ToOps:     rn.Ops(),
		SimCycles: rn.Kernel().Now(),
	}
	irq := tr.Latencies()
	d, err := irq.DeltaSince(&c.prevIRQ)
	if err != nil {
		return b, err
	}
	b.IRQ = d.State()
	c.prevIRQ = irq
	for _, sl := range tr.SourceLatencies() {
		h := sl.Hist
		sd, err := h.DeltaSince(&c.prevSrc[sl.Source])
		if err != nil {
			return b, err
		}
		if sd.Count() > 0 {
			b.Sources = append(b.Sources, SourceDelta{Op: uint8(sl.Source), Hist: sd.State()})
		}
		c.prevSrc[sl.Source] = h
	}
	for k := range c.prevKinds {
		if cnt := tr.Count(obs.Kind(k)); cnt > c.prevKinds[k] {
			if b.EventCounts == nil {
				b.EventCounts = make(map[string]uint64)
			}
			b.EventCounts[obs.Kind(k).String()] = cnt - c.prevKinds[k]
			c.prevKinds[k] = cnt
		}
	}
	em, dr := tr.Emitted(), tr.Dropped()
	b.Emitted, b.Dropped = em-c.prevEmitted, dr-c.prevDropped
	c.prevEmitted, c.prevDropped = em, dr
	st := rn.SentinelStatus()
	b.Violations = st.Violations - c.prevViol
	b.NearMax = st.NearMax - c.prevNearMax
	c.prevViol, c.prevNearMax = st.Violations, st.NearMax
	caps := rn.Captures()
	if len(caps) > c.sentCaptures {
		b.Captures = append([]soak.Capture(nil), caps[c.sentCaptures:]...)
		c.sentCaptures = len(caps)
	}
	c.prevOps = rn.Ops()
	return b, nil
}
