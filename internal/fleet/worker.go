package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"verikern/internal/obs"
	"verikern/internal/soak"
)

// WorkerOptions tunes RunWorker.
type WorkerOptions struct {
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// RunWorker drives one fleet worker over an established connection:
// hello, receive the shard lease, deterministically fast-forward to
// the merged checkpoint (a restarted worker regenerates — without
// streaming — exactly the ops the coordinator already merged), then
// step-and-stream delta batches until the shard budget is spent, the
// coordinator drains, or ctx is cancelled. The final batch is marked
// Final and the connection closed.
func RunWorker(ctx context.Context, conn io.ReadWriteCloser, opt WorkerOptions) error {
	defer conn.Close()
	if err := writeMsg(conn, msgHello, Hello{Proto: protoVersion, PID: os.Getpid()}); err != nil {
		return fmt.Errorf("fleet worker: hello: %w", err)
	}
	t, body, err := readMsg(conn)
	if err != nil {
		return fmt.Errorf("fleet worker: awaiting assign: %w", err)
	}
	if t == msgDrain {
		opt.logf("fleet worker: no shard available, exiting")
		return nil
	}
	if t != msgAssign {
		return fmt.Errorf("fleet worker: unexpected message type %d", t)
	}
	var as Assign
	if err := json.Unmarshal(body, &as); err != nil {
		return fmt.Errorf("fleet worker: bad assign: %w", err)
	}
	cfg := as.Spec.SoakConfig().WithDefaults()
	if cfg.MachineReplay {
		// The plan never crosses the wire; the analysis pipeline is
		// deterministic, so a local rebuild yields the identical plan.
		plan, err := soak.BuildReplayPlan(ctx, cfg)
		if err != nil {
			return fmt.Errorf("fleet worker: replay plan: %w", err)
		}
		cfg.Replay = plan
	}
	rn, err := soak.NewRunner(cfg, as.Shard)
	if err != nil {
		return fmt.Errorf("fleet worker: shard %d: %w", as.Shard, err)
	}
	opt.logf("fleet worker %d: shard %d, checkpoint %d/%d", os.Getpid(), as.Shard, as.Checkpoint, as.Budget)

	// Fast-forward: replay the already-merged prefix silently. The op
	// stream is seeded per shard, so this reconstructs the exact
	// kernel and tracer state the previous incarnation had at the
	// checkpoint — including the capture list, which the cursor then
	// baselines so nothing is re-streamed.
	const ffChunk = 256
	for rn.Ops() < as.Checkpoint {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := as.Checkpoint - rn.Ops()
		if n > ffChunk {
			n = ffChunk
		}
		if err := rn.Step(int(n)); err != nil {
			return fmt.Errorf("fleet worker: fast-forward: %w", err)
		}
	}
	cur := newCursor(as.Shard)
	cur.config = as.Spec.ConfigKey
	if as.Checkpoint > 0 {
		// Restart: everything up to the checkpoint — including the
		// boot-time trace events — was merged by the previous
		// incarnation's batches; baseline it all away.
		cur.sync(rn)
	}
	// Fresh shard: keep the zero baseline, so the first batch carries
	// the boot-time events (object creation emits create-chunk events
	// before the first op) exactly as an in-process AddTracer would.

	// The reader goroutine watches for the coordinator's drain (or a
	// dead connection) while the main loop steps the kernel.
	drainCh := make(chan struct{})
	lostCh := make(chan struct{})
	go func() {
		for {
			t, _, err := readMsg(conn)
			if err != nil {
				close(lostCh)
				return
			}
			if t == msgDrain {
				close(drainCh)
				return
			}
		}
	}()

	batchOps := as.BatchOps
	if batchOps <= 0 {
		batchOps = 512
	}
	for {
		final := false
		select {
		case <-ctx.Done():
			final = true
		case <-drainCh:
			final = true
		case <-lostCh:
			return fmt.Errorf("fleet worker: connection lost")
		default:
		}
		remaining := uint64(0)
		if as.Budget > rn.Ops() {
			remaining = as.Budget - rn.Ops()
		}
		if remaining == 0 {
			final = true
		}
		if !final {
			n := uint64(batchOps)
			if n > remaining {
				n = remaining
			}
			if err := rn.Step(int(n)); err != nil {
				return fmt.Errorf("fleet worker: shard %d: %w", as.Shard, err)
			}
			if rn.Ops() >= as.Budget {
				final = true
			}
		}
		b, err := cur.batch(rn)
		if err != nil {
			return fmt.Errorf("fleet worker: delta: %w", err)
		}
		b.Final = final
		if err := writeMsg(conn, msgBatch, b); err != nil {
			return fmt.Errorf("fleet worker: stream: %w", err)
		}
		if final {
			opt.logf("fleet worker %d: shard %d done at %d ops", os.Getpid(), as.Shard, rn.Ops())
			return nil
		}
	}
}

// cursor tracks what a worker has already streamed, so each batch
// carries exactly the window since the previous one. After a restart's
// fast-forward, sync re-baselines everything (including the capture
// count) at the merged checkpoint.
type cursor struct {
	shard int
	// config is the spec's ConfigKey, echoed on every batch so the
	// coordinator can refuse deltas from another configuration.
	config       string
	prevOps      uint64
	prevIRQ      obs.Histogram
	prevSrc      []obs.Histogram
	prevKinds    []uint64
	prevEmitted  uint64
	prevDropped  uint64
	prevViol     uint64
	prevNearMax  uint64
	sentCaptures int
}

func newCursor(shard int) *cursor {
	return &cursor{
		shard:     shard,
		prevSrc:   make([]obs.Histogram, obs.NumOps()),
		prevKinds: make([]uint64, obs.NumKinds()),
	}
}

// sync baselines the cursor at the runner's current state: everything
// up to here is considered already merged upstream.
func (c *cursor) sync(rn *soak.Runner) {
	tr := rn.Tracer()
	c.prevOps = rn.Ops()
	c.prevIRQ = tr.Latencies()
	for i := range c.prevSrc {
		c.prevSrc[i] = obs.Histogram{}
	}
	for _, sl := range tr.SourceLatencies() {
		c.prevSrc[sl.Source] = sl.Hist
	}
	for k := range c.prevKinds {
		c.prevKinds[k] = tr.Count(obs.Kind(k))
	}
	c.prevEmitted = tr.Emitted()
	c.prevDropped = tr.Dropped()
	st := rn.SentinelStatus()
	c.prevViol = st.Violations
	c.prevNearMax = st.NearMax
	c.sentCaptures = len(rn.Captures())
}

// batch extracts the delta window since the last batch (or sync) and
// advances the cursor.
func (c *cursor) batch(rn *soak.Runner) (Batch, error) {
	tr := rn.Tracer()
	b := Batch{
		Shard:     c.shard,
		Config:    c.config,
		FromOps:   c.prevOps,
		ToOps:     rn.Ops(),
		SimCycles: rn.Kernel().Now(),
	}
	irq := tr.Latencies()
	d, err := irq.DeltaSince(&c.prevIRQ)
	if err != nil {
		return b, err
	}
	b.IRQ = d.State()
	c.prevIRQ = irq
	for _, sl := range tr.SourceLatencies() {
		h := sl.Hist
		sd, err := h.DeltaSince(&c.prevSrc[sl.Source])
		if err != nil {
			return b, err
		}
		if sd.Count() > 0 {
			b.Sources = append(b.Sources, SourceDelta{Op: uint8(sl.Source), Hist: sd.State()})
		}
		c.prevSrc[sl.Source] = h
	}
	for k := range c.prevKinds {
		if cnt := tr.Count(obs.Kind(k)); cnt > c.prevKinds[k] {
			if b.EventCounts == nil {
				b.EventCounts = make(map[string]uint64)
			}
			b.EventCounts[obs.Kind(k).String()] = cnt - c.prevKinds[k]
			c.prevKinds[k] = cnt
		}
	}
	em, dr := tr.Emitted(), tr.Dropped()
	b.Emitted, b.Dropped = em-c.prevEmitted, dr-c.prevDropped
	c.prevEmitted, c.prevDropped = em, dr
	st := rn.SentinelStatus()
	b.Violations = st.Violations - c.prevViol
	b.NearMax = st.NearMax - c.prevNearMax
	c.prevViol, c.prevNearMax = st.Violations, st.NearMax
	caps := rn.Captures()
	if len(caps) > c.sentCaptures {
		b.Captures = append([]soak.Capture(nil), caps[c.sentCaptures:]...)
		c.sentCaptures = len(caps)
	}
	c.prevOps = rn.Ops()
	return b, nil
}
