package fleet

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// LocalOptions tunes RunLocal.
type LocalOptions struct {
	// ChaosKills abruptly severs this many worker connections
	// mid-campaign (after roughly a third of the budget has merged),
	// exercising the kill/restart/fast-forward path. The supervisor
	// replaces each killed worker, so the campaign still completes.
	ChaosKills int
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// RunLocal drives a whole fleet campaign in one process: a coordinator
// plus in-process workers connected over net.Pipe, supervised so that
// killed or drained workers are replaced until every shard completes.
// It returns the coordinator (stopped, fully merged) for inspection.
//
// This is the reference harness for the equal-seed equivalence proof:
// everything — sharding, wire protocol, delta merge, kill/restart —
// runs exactly as in the multi-process deployment, minus the TCP.
func RunLocal(ctx context.Context, cfg Config, opt LocalOptions) (*Coordinator, error) {
	c, err := New(ctx, cfg)
	if err != nil {
		return nil, err
	}
	workerCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	var live []net.Conn // coordinator-side ends, for chaos kills
	// closeLive severs every remaining pipe so goroutines wedged in
	// undeadlined reads (possible under chaos with frame deadlines off)
	// unblock before wg.Wait; cancel alone cannot reach a blocked Read.
	closeLive := func() {
		mu.Lock()
		for _, cn := range live {
			cn.Close()
		}
		mu.Unlock()
	}
	kills := 0
	var pendingRetries atomic.Int64 // failed sessions, reported at the next hello

	var wg sync.WaitGroup
	spawn := func() {
		server, client := net.Pipe()
		mu.Lock()
		live = append(live, server)
		mu.Unlock()
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = c.ServeConn(server)
			mu.Lock()
			for i, cn := range live {
				if cn == server {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
			mu.Unlock()
		}()
		go func() {
			defer wg.Done()
			wopt := WorkerOptions{Logf: opt.Logf, Retries: int(pendingRetries.Swap(0))}
			if err := RunWorker(workerCtx, client, wopt); err != nil && workerCtx.Err() == nil {
				// The replacement's hello carries the retry count, the
				// in-process analogue of RunWorkerLoop's reconnects.
				pendingRetries.Add(int64(wopt.Retries) + 1)
			}
		}()
	}
	for i := 0; i < c.spec.Workers; i++ {
		spawn()
	}

	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
supervise:
	for {
		select {
		case <-c.Done():
			break supervise
		case <-ctx.Done():
			cancel()
			closeLive()
			wg.Wait()
			c.Stop()
			return c, ctx.Err()
		case <-tick.C:
		}
		if kills < opt.ChaosKills && c.MergedOps() > c.spec.Ops/3 {
			mu.Lock()
			var victim net.Conn
			if len(live) > 0 {
				victim = live[0]
			}
			mu.Unlock()
			if victim != nil {
				victim.Close()
				kills++
				if opt.Logf != nil {
					opt.Logf("fleet: chaos kill %d/%d", kills, opt.ChaosKills)
				}
			}
		}
		// Keep enough workers alive for the incomplete shards: a
		// killed (or drained) worker's replacement leases the freed
		// shard and fast-forwards to its checkpoint.
		st := c.Status()
		incomplete, attached := 0, 0
		for _, sh := range st.Shards {
			if !sh.Completed {
				incomplete++
				if sh.Attached {
					attached++
				}
			}
		}
		mu.Lock()
		liveN := len(live)
		mu.Unlock()
		if incomplete > 0 && liveN < incomplete && attached < incomplete {
			spawn()
		}
	}
	cancel()
	closeLive()
	wg.Wait()
	c.Stop()
	return c, nil
}
