package probe

import (
	"fmt"
	"math"
	"math/rand"

	"verikern/internal/kobj"
	"verikern/internal/obs"
	"verikern/internal/soak"
)

// genome is one kernel-layer search candidate: which op to drive, the
// IRQ raise phase within it, and the workload knobs the soak otherwise
// randomizes. Every field is explicit (no zero-means-draw), so a
// genome's evaluation consumes a fixed slice of the runner's rng
// stream and the search is deterministic and resumable by seed.
type genome struct {
	Op          soak.OpKind
	Phase       uint64 // cycles from eval start to IRQ raise
	MsgLen      int
	Waiters     int
	Badges      int
	RetypeBits  uint8
	RetypeCount int
	DecodeDepth int
	// Sleepers suspends that many pool threads for the eval,
	// thinning the ready queue under the op.
	Sleepers int
}

func (g genome) String() string {
	return fmt.Sprintf("genome{op=%s phase=%d msg=%d waiters=%d badges=%d retype=%dx2^%d decode=%d sleepers=%d}",
		g.Op, g.Phase, g.MsgLen, g.Waiters, g.Badges, g.RetypeCount, g.RetypeBits, g.DecodeDepth, g.Sleepers)
}

// genomeOps is the mutation vocabulary: the soak's op drivers that can
// host an interrupt. Yield/Idle are omitted — their latency windows
// are trivially short.
var genomeOps = []soak.OpKind{
	soak.OpIPC, soak.OpReplyRecv, soak.OpEndpointChurn, soak.OpRetype,
	soak.OpVSpace, soak.OpCapOps, soak.OpThreadCtl, soak.OpSignal,
	soak.OpDeepIPC,
}

// sweepSeeds is the deterministic seeding list: the ops with the
// longest kernel paths paired with raise phases aimed at their worst
// windows, highest-priority first so even tiny budgets cover the
// known-adversarial structure. The 150–175k phases target the final
// chunk of opVSpace's page-directory clear (16 KiB at ~10.6k
// cycles/KiB), after whose last preemption poll the clear's tail,
// the retype bookkeeping and the non-preemptible kernel-window copy
// run back to back — the modernised kernel's longest window. Phase
// 200 latches the IRQ at the op's entry, which is the worst case for
// the non-preemptible kernels.
var sweepSeeds = []struct {
	op    soak.OpKind
	phase uint64
}{
	{soak.OpVSpace, 165_000},
	{soak.OpRetype, 200},
	{soak.OpEndpointChurn, 200},
	{soak.OpDeepIPC, 200},
	{soak.OpVSpace, 170_000},
	{soak.OpRetype, 2_000},
	{soak.OpReplyRecv, 200},
	{soak.OpVSpace, 150_000},
	{soak.OpEndpointChurn, 2_000},
	{soak.OpVSpace, 175_000},
	{soak.OpRetype, 8_000},
	{soak.OpVSpace, 8_000},
	{soak.OpDeepIPC, 1_000},
	{soak.OpVSpace, 100_000},
	{soak.OpRetype, 15_000},
	{soak.OpVSpace, 200},
	{soak.OpReplyRecv, 2_000},
	{soak.OpVSpace, 300_000},
	{soak.OpRetype, 40_000},
	{soak.OpEndpointChurn, 8_000},
	{soak.OpVSpace, 40_000},
}

const (
	minPhase = 50
	maxPhase = 2_000_000
	// maxRetypeBytes caps one retype's total clear length (count <<
	// bits) at the soak's own worst case, so the non-preemptible
	// clear of the nopreempt kernel stays inside its computed bound.
	maxRetypeBytes = 1 << 16
)

// kernelSearch drives the genome search against one live kernel.
type kernelSearch struct {
	rn      *soak.Runner
	rng     *rand.Rand
	pool    int
	metrics *obs.Metrics
}

// searchKernel runs the kernel-layer campaign: a deterministic sweep
// over op×phase seeds, then hill-climbing mutations of the best
// genome, all against one persistent runner whose sentinel checks
// every sample against the composed interrupt-response bound and
// captures the flight recorder on each new maximum.
func searchKernel(cfg Config, seedRoot, bound uint64, budget int) (Entry, obs.BoundStatus, []soak.Capture, error) {
	rn, err := soak.NewRunner(soak.Config{
		Label:         cfg.Label,
		Arch:          cfg.Arch,
		Seed:          cfg.Seed,
		Kernel:        cfg.Kernel,
		Pinned:        cfg.Pinned,
		BoundCycles:   bound,
		PoolThreads:   cfg.PoolThreads,
		MaxCaptures:   cfg.MaxCaptures,
		CaptureNewMax: true,
	}, 0)
	if err != nil {
		return Entry{}, obs.BoundStatus{}, nil, err
	}
	s := &kernelSearch{
		rn:      rn,
		rng:     rand.New(rand.NewSource(int64(seedRoot) ^ 0x5DEECE66D)),
		pool:    cfg.PoolThreads,
		metrics: cfg.Metrics,
	}

	var best genome
	var bestFit uint64
	evals, improvements := 0, 0
	accept := func(g genome, fit uint64) {
		if evals == 1 || fit >= bestFit {
			if fit > bestFit {
				improvements++
				s.metrics.Add("probe.improvements", 1)
			}
			bestFit, best = fit, g
		}
	}

	// Phase 1: the seeding sweep, in priority order.
	sweepN := budget / 2
	if sweepN > len(sweepSeeds) {
		sweepN = len(sweepSeeds)
	}
	if sweepN < 1 {
		sweepN = 1
	}
	for i := 0; i < sweepN; i++ {
		g := s.clamp(genome{
			Op: sweepSeeds[i].op, Phase: sweepSeeds[i].phase,
			MsgLen: 119, Waiters: s.pool - 2, Badges: 2,
			RetypeBits: 16, RetypeCount: 1, DecodeDepth: 32,
		})
		fit, err := s.eval(g)
		if err != nil {
			return Entry{}, obs.BoundStatus{}, nil, fmt.Errorf("sweep %v: %w", g, err)
		}
		evals++
		accept(g, fit)
	}

	// Phase 2: hill-climb from the sweep's best, with occasional
	// random restarts to escape flat plateaus.
	for evals < budget {
		var g genome
		if s.rng.Float64() < 0.15 {
			g = s.random()
		} else {
			g = s.mutate(best)
		}
		fit, err := s.eval(g)
		if err != nil {
			return Entry{}, obs.BoundStatus{}, nil, fmt.Errorf("candidate %v: %w", g, err)
		}
		evals++
		accept(g, fit)
	}

	e := Entry{
		Name:         "irq-response",
		ObservedMax:  rn.MaxObserved(),
		BoundCycles:  bound,
		Tightness:    tightness(rn.MaxObserved(), bound),
		Evals:        evals,
		Improvements: improvements,
		Best:         best.String(),
	}
	return e, rn.SentinelStatus(), rn.Captures(), nil
}

// eval runs one genome: thin the ready queue, pin the workload knobs,
// arm the timer at the genome's phase, drive the op, then drain — any
// latched-but-unserviced IRQ is serviced (so its sample lands in this
// eval) and a still-armed timer is disarmed (so it cannot pollute the
// next eval's attribution). Fitness is the worst sample recorded
// during the eval.
func (s *kernelSearch) eval(g genome) (uint64, error) {
	k := s.rn.Kernel()
	drv := s.rn.Driver()
	slept := 0
	pool := s.rn.Pool()
	for _, w := range pool {
		if slept >= g.Sleepers {
			break
		}
		if !w.State.Runnable() {
			continue
		}
		if err := k.Suspend(drv, w); err != nil {
			return 0, err
		}
		slept++
	}
	s.rn.SetParams(soak.Params{
		MsgLen:      g.MsgLen,
		Waiters:     g.Waiters,
		Badges:      g.Badges,
		RetypeBits:  g.RetypeBits,
		RetypeCount: g.RetypeCount,
		TimerPhase:  g.Phase,
		DecodeDepth: g.DecodeDepth,
	})
	before := len(k.Latencies())
	s.rn.ArmTimer(g.Phase)
	opErr := s.rn.RunOp(g.Op)
	for _, w := range pool {
		if slept == 0 {
			break
		}
		if w.State == kobj.ThreadInactive {
			if err := k.Resume(drv, w); err != nil {
				return 0, err
			}
			slept--
		}
	}
	k.Yield()             // service a latched-but-pending IRQ here, not next eval
	k.SetPeriodicTimer(0) // disarm a leftover one-shot
	s.metrics.Add("probe.evals", 1)
	s.metrics.Add("probe.kernel_evals", 1)
	if opErr != nil {
		return 0, opErr
	}
	if err := k.InvariantFailure(); err != nil {
		return 0, err
	}
	var fit uint64
	for _, l := range k.Latencies()[before:] {
		if l > fit {
			fit = l
		}
	}
	return fit, nil
}

// random draws a fresh genome.
func (s *kernelSearch) random() genome {
	// Log-uniform phase across the full window.
	lo, hi := float64(minPhase), float64(maxPhase)
	ph := uint64(lo * math.Pow(hi/lo, s.rng.Float64()))
	return s.clamp(genome{
		Op:          genomeOps[s.rng.Intn(len(genomeOps))],
		Phase:       ph,
		MsgLen:      1 + s.rng.Intn(119),
		Waiters:     1 + s.rng.Intn(s.pool),
		Badges:      1 + s.rng.Intn(4),
		RetypeBits:  uint8(12 + s.rng.Intn(5)),
		RetypeCount: 1 + s.rng.Intn(16),
		DecodeDepth: 1 + s.rng.Intn(32),
		Sleepers:    s.rng.Intn(s.pool / 2),
	})
}

// mutate perturbs one knob of the genome.
func (s *kernelSearch) mutate(g genome) genome {
	n := g
	switch s.rng.Intn(9) {
	case 0:
		n.Op = genomeOps[s.rng.Intn(len(genomeOps))]
	case 1:
		// Multiplicative phase step — scans across op-length scales.
		f := []float64{0.5, 0.8, 1.25, 2.0}[s.rng.Intn(4)]
		n.Phase = uint64(float64(g.Phase) * f)
	case 2:
		// Additive phase jitter — walks within a window.
		d := uint64(1 + s.rng.Intn(5_000))
		if s.rng.Intn(2) == 0 && g.Phase > d {
			n.Phase = g.Phase - d
		} else {
			n.Phase = g.Phase + d
		}
	case 3:
		n.MsgLen = 1 + s.rng.Intn(119)
	case 4:
		n.Waiters = 1 + s.rng.Intn(s.pool)
	case 5:
		n.Badges = 1 + s.rng.Intn(4)
	case 6:
		n.RetypeBits = uint8(12 + s.rng.Intn(5))
		n.RetypeCount = 1 + s.rng.Intn(16)
	case 7:
		n.DecodeDepth = 1 + s.rng.Intn(32)
	case 8:
		n.Sleepers = s.rng.Intn(s.pool / 2)
	}
	return s.clamp(n)
}

// clamp forces a genome into the feasible region: phases in window,
// knobs within pool capacity (reply-recv needs two free threads on
// top of waiters and sleepers), retype clears capped at the soak's
// worst case so nopreempt bounds hold.
func (s *kernelSearch) clamp(g genome) genome {
	if g.Phase < minPhase {
		g.Phase = minPhase
	}
	if g.Phase > maxPhase {
		g.Phase = maxPhase
	}
	if g.MsgLen < 1 {
		g.MsgLen = 1
	}
	if g.MsgLen > 119 {
		g.MsgLen = 119
	}
	if g.Sleepers < 0 {
		g.Sleepers = 0
	}
	if g.Sleepers > s.pool/2 {
		g.Sleepers = s.pool / 2
	}
	if g.Waiters < 1 {
		g.Waiters = 1
	}
	if g.Waiters > s.pool-g.Sleepers-2 {
		g.Waiters = s.pool - g.Sleepers - 2
		if g.Waiters < 1 {
			g.Waiters = 1
		}
	}
	if g.Badges < 1 {
		g.Badges = 1
	}
	if g.Badges > 4 {
		g.Badges = 4
	}
	if g.Badges > g.Waiters {
		g.Badges = g.Waiters
	}
	if g.RetypeBits < 12 {
		g.RetypeBits = 12
	}
	if g.RetypeBits > 16 {
		g.RetypeBits = 16
	}
	if g.RetypeCount < 1 {
		g.RetypeCount = 1
	}
	if max := maxRetypeBytes >> g.RetypeBits; g.RetypeCount > max {
		g.RetypeCount = max
	}
	if g.DecodeDepth < 1 {
		g.DecodeDepth = 1
	}
	if g.DecodeDepth > 32 {
		g.DecodeDepth = 32
	}
	return g
}
