// Package probe is the adversarial worst-case prober: where the soak
// observatory samples latency passively under randomized load, the
// probe searches for it. Per kernel entry point it primes the machine
// into its costliest reachable state (targeted footprint eviction,
// replacement-phase advance, predictor mistraining — machine.Prime)
// and hill-climbs the priming knobs; per kernel configuration it runs
// a directed search over workload genomes — operation kind, IRQ raise
// phase within the op, endpoint queue depth and badge mix, retype size
// and count (the chunk phase), cap-decode depth, ready-queue thinning
// — reusing the soak's op drivers as the mutation vocabulary.
//
// The output is a bound-tightness report: per entry, the observed
// maximum the search reached against the computed WCET bound, as the
// ratio observed/bound. The probe is the live adversary of the
// paper's §5.4 measurement methodology: a sound analysis must keep
// every observation under its bound (a violation here is a bug in the
// analysis or the model — the acceptance tests fail on it), and a
// tight analysis keeps the ratio high.
//
// Probes are seeded and deterministic: the same Config reproduces the
// same search trajectory, the same observed maxima and byte-identical
// reports, so tightness artifacts regression-test like goldens.
package probe

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"verikern/internal/arch"
	"verikern/internal/kbin"
	"verikern/internal/kernel"
	"verikern/internal/kimage"
	"verikern/internal/machine"
	"verikern/internal/measure"
	"verikern/internal/obs"
	"verikern/internal/passes"
	"verikern/internal/soak"
	"verikern/internal/wcet"
)

// Config parameterises one probe campaign over a single kernel
// configuration.
type Config struct {
	// Label names the configuration (e.g. "benno+preempt+pinned").
	Label string
	// Arch selects the hardware backend the probe builds, analyses
	// and measures against ("" means arch.ARM1136ID). The search's
	// rng streams mix the backend id (identity for the default, so
	// historical ARM1136 trajectories are unchanged).
	Arch string
	// Seed makes the search reproducible.
	Seed uint64
	// Budget is the total evaluation budget: half is split evenly
	// across the four machine-layer entry points, half drives the
	// kernel-layer genome search. Default 160.
	Budget int
	// Kernel is the functional-kernel configuration under probe.
	Kernel kernel.Config
	// Pinned selects the L1 way-pinned interrupt path for both the
	// analysis and the measurement machine.
	Pinned bool
	// PoolThreads sizes the workload runner's thread pool (also the
	// ceiling for queue-depth and ready-queue genome knobs).
	// Default 8.
	PoolThreads int
	// MaxCaptures caps the flight-recorder dumps the runner keeps
	// (one fires on every new observed maximum). Default 8.
	MaxCaptures int
	// Cache, when set, shares per-pass analysis artifacts with the
	// rest of the toolchain (the bounds here are the same analyses
	// the tables and the soak sentinel use).
	Cache *passes.Cache
	// Metrics, when set, receives probe counters (probe.evals,
	// probe.improvements, ...) alongside the analysis pipeline's.
	Metrics *obs.Metrics
	// Memo routes the machine-layer search's primed replays through
	// the memoized block-retirement engine (machine.Memo), shared
	// across all four entry-point searches of the run. The search
	// trajectory and report are identical either way — the memoized
	// engine is differentially proven against the naive one — it is
	// purely an evaluation-throughput knob.
	Memo bool
}

func (c Config) withDefaults() Config {
	if c.Label == "" {
		c.Label = "probe"
	}
	if c.Budget <= 0 {
		c.Budget = 160
	}
	if c.PoolThreads <= 0 {
		c.PoolThreads = 8
	}
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = 8
	}
	return c
}

// Entry is one row of the tightness report: the directed search's
// best observation against the computed bound for one entry point.
type Entry struct {
	// Name is the kernel entry point ("handleSyscall", ...) or
	// "irq-response" for the composed kernel-layer bound.
	Name string `json:"name"`
	// ObservedMax is the worst latency/cost the search reached.
	ObservedMax uint64 `json:"observed_max"`
	// BoundCycles is the computed WCET bound for the entry.
	BoundCycles uint64 `json:"computed_bound"`
	// Tightness is ObservedMax/BoundCycles, rounded to 4 decimals.
	// Soundness demands ≤ 1; higher is a tighter analysis.
	Tightness float64 `json:"tightness"`
	// Evals is how many candidate evaluations the entry consumed.
	Evals int `json:"evals"`
	// Improvements counts strict fitness improvements accepted.
	Improvements int `json:"improvements"`
	// Best describes the winning candidate (prime spec or genome).
	Best string `json:"best"`
}

// Report is one configuration's probe outcome.
type Report struct {
	Label   string  `json:"label"`
	Arch    string  `json:"arch"`
	Pinned  bool    `json:"pinned"`
	Seed    uint64  `json:"seed"`
	Budget  int     `json:"budget"`
	Entries []Entry `json:"entries"`
	// Violations counts observations exceeding their bound — zero
	// for a sound analysis; the acceptance gate fails otherwise.
	Violations uint64 `json:"violations"`

	// Status is the kernel-layer sentinel's standing verdict.
	Status obs.BoundStatus `json:"-"`
	// Captures are the flight-recorder dumps the kernel-layer
	// search fired on each new observed maximum.
	Captures []soak.Capture `json:"-"`
}

// tightness rounds observed/bound to 4 decimals (0 when unbounded).
func tightness(observed, bound uint64) float64 {
	if bound == 0 {
		return 0
	}
	return math.Round(float64(observed)/float64(bound)*1e4) / 1e4
}

// Run executes one probe campaign: analyses the configuration's
// kernel image for per-entry bounds, hill-climbs machine priming per
// entry point, then runs the genome search against a live kernel for
// the composed interrupt-response bound.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}

	backend, err := arch.Lookup(cfg.Arch)
	if err != nil {
		return nil, fmt.Errorf("probe %s: %w", cfg.Label, err)
	}
	img, cons, err := kbin.Build(kbin.Options{
		Modernised: cfg.Kernel.PreemptionPoints,
		Pinned:     cfg.Pinned,
		Arch:       cfg.Arch,
	})
	if err != nil {
		return nil, fmt.Errorf("probe %s: building image: %w", cfg.Label, err)
	}
	hw := arch.Config{Arch: cfg.Arch}
	if cfg.Pinned {
		hw.PinnedL1Ways = 1
	}
	a := wcet.New(img, hw)
	a.AddConstraints(cons...)
	a.Cache = cfg.Cache
	a.Metrics = cfg.Metrics

	// The machine-layer searches draw from a backend-mixed root so a
	// two-backend probe matrix explores distinct priming trajectories;
	// identity for ARM1136 keeps historical reports byte-identical.
	seedRoot := measure.ArchSeed(cfg.Seed, backend)

	rep := &Report{Label: cfg.Label, Arch: backend.ID, Pinned: cfg.Pinned, Seed: cfg.Seed, Budget: cfg.Budget}

	// Budget split: half across the four machine-layer entries, half
	// for the kernel-layer genome search.
	perEntry := cfg.Budget / 8
	if perEntry < 1 {
		perEntry = 1
	}
	kernelBudget := cfg.Budget - 4*perEntry
	if kernelBudget < 1 {
		kernelBudget = 1
	}

	// One replayer (and so one memo, when enabled) serves all four
	// entry searches: they share the image and hardware config, which
	// is exactly the memo's binding contract.
	replayer := &measure.Replayer{}
	if cfg.Memo {
		replayer.Memo = machine.NewMemo()
	}

	entries := []string{kbin.EntrySyscall, kbin.EntryInterrupt, kbin.EntryPageFault, kbin.EntryUndefined}
	var sysBound, irqBound uint64
	for i, name := range entries {
		res, err := a.AnalyzeContext(ctx, name)
		if err != nil {
			return nil, fmt.Errorf("probe %s: %s bound: %w", cfg.Label, name, err)
		}
		switch name {
		case kbin.EntrySyscall:
			sysBound = res.Cycles
		case kbin.EntryInterrupt:
			irqBound = res.Cycles
		}
		rng := rand.New(rand.NewSource(int64(seedRoot) ^ int64(i+1)*0x9E3779B9))
		e := searchMachine(replayer, img, hw, res, perEntry, rng, cfg.Metrics)
		e.Name = name
		if e.ObservedMax > e.BoundCycles {
			rep.Violations++
		}
		rep.Entries = append(rep.Entries, e)
	}

	// The kernel-layer bound composes as the soak sentinel's does:
	// syscall + interrupt path + the backend's architectural
	// interrupt-entry cost (zero on ARM1136, whose entry sequence the
	// image itself models).
	kernelBound := sysBound + irqBound + backend.InterruptEntryCost(hw)
	ke, status, caps, err := searchKernel(cfg, seedRoot, kernelBound, kernelBudget)
	if err != nil {
		return nil, fmt.Errorf("probe %s: kernel-layer search: %w", cfg.Label, err)
	}
	rep.Violations += status.Violations
	rep.Status = status
	rep.Captures = caps
	rep.Entries = append(rep.Entries, ke)
	return rep, nil
}

// searchMachine hill-climbs the adversarial priming knobs for one
// analysed entry point: each candidate is a machine.PrimeSpec, its
// fitness one primed replay of the entry's reconstructed worst-case
// trace.
func searchMachine(r *measure.Replayer, img *kimage.Image, hw arch.Config, res *wcet.Result, budget int, rng *rand.Rand, m *obs.Metrics) Entry {
	best := machine.PrimeSpec{Seed: uint32(rng.Int63()), Footprint: true, Mistrain: true}
	bestFit := r.ReplayPrimed(img, hw, res.Trace, best)
	m.Add("probe.evals", 1)
	m.Add("probe.machine_evals", 1)
	evals, improvements := 1, 0
	for evals < budget {
		cand := mutateSpec(best, rng)
		fit := r.ReplayPrimed(img, hw, res.Trace, cand)
		evals++
		m.Add("probe.evals", 1)
		m.Add("probe.machine_evals", 1)
		if fit >= bestFit {
			if fit > bestFit {
				improvements++
				m.Add("probe.improvements", 1)
			}
			bestFit, best = fit, cand
		}
	}
	return Entry{
		ObservedMax:  bestFit,
		BoundCycles:  res.Cycles,
		Tightness:    tightness(bestFit, res.Cycles),
		Evals:        evals,
		Improvements: improvements,
		Best: fmt.Sprintf("prime{seed=%d footprint=%v advance=%d mistrain=%v}",
			best.Seed, best.Footprint, best.ReplacementAdvance, best.Mistrain),
	}
}

// mutateSpec perturbs one priming knob.
func mutateSpec(s machine.PrimeSpec, rng *rand.Rand) machine.PrimeSpec {
	n := s
	switch rng.Intn(4) {
	case 0:
		n.Seed = uint32(rng.Int63())
	case 1:
		n.Footprint = !n.Footprint
	case 2:
		n.ReplacementAdvance = rng.Intn(16)
	case 3:
		n.Mistrain = !n.Mistrain
	}
	return n
}
