package probe

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"verikern/internal/kernel"
	"verikern/internal/passes"
	"verikern/internal/sched"
)

func probeConfig(preempt, pinned bool) Config {
	return Config{
		Label:  "test",
		Seed:   42,
		Budget: 40,
		Kernel: kernel.Config{Scheduler: sched.Benno, PreemptionPoints: preempt},
		Pinned: pinned,
		Cache:  passes.NewCache(nil),
	}
}

// TestProbeSound: the probe's entire point is adversarial pressure on
// the analysis — and a sound analysis must absorb all of it. Every
// observed maximum stays under its computed bound, across the full
// preemption × pinning matrix.
func TestProbeSound(t *testing.T) {
	cache := passes.NewCache(nil)
	for _, c := range []struct {
		preempt, pinned bool
	}{{true, true}, {true, false}, {false, true}, {false, false}} {
		cfg := probeConfig(c.preempt, c.pinned)
		cfg.Cache = cache
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("preempt=%v pinned=%v: %v", c.preempt, c.pinned, err)
		}
		if rep.Violations != 0 {
			t.Errorf("preempt=%v pinned=%v: %d bound violations", c.preempt, c.pinned, rep.Violations)
		}
		for _, e := range rep.Entries {
			if e.ObservedMax > e.BoundCycles {
				t.Errorf("preempt=%v pinned=%v %s: observed %d exceeds bound %d",
					c.preempt, c.pinned, e.Name, e.ObservedMax, e.BoundCycles)
			}
			if e.ObservedMax == 0 {
				t.Errorf("preempt=%v pinned=%v %s: search observed nothing", c.preempt, c.pinned, e.Name)
			}
			if e.Tightness <= 0 || e.Tightness > 1 {
				t.Errorf("preempt=%v pinned=%v %s: tightness %v out of (0,1]",
					c.preempt, c.pinned, e.Name, e.Tightness)
			}
		}
	}
}

// TestProbeDeterministic: the same Config reproduces the identical
// report — the resumable-seed contract the tightness artifact's
// byte-stability rests on.
func TestProbeDeterministic(t *testing.T) {
	run := func() *Report {
		rep, err := Run(context.Background(), probeConfig(true, false))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Entries, b.Entries) {
		t.Errorf("identical configs diverged:\n%+v\n%+v", a.Entries, b.Entries)
	}
	if a.Violations != b.Violations || a.Status != b.Status {
		t.Errorf("identical configs disagree on sentinel state")
	}
}

// TestProbeMemoIdentical: the memoized engine is a pure throughput
// knob — the same probe campaign with Memo on and off must produce the
// identical report (same search trajectory, same observed maxima, same
// sentinel verdict), across the preemption × pinning matrix.
func TestProbeMemoIdentical(t *testing.T) {
	for _, c := range []struct {
		preempt, pinned bool
	}{{true, true}, {true, false}, {false, true}, {false, false}} {
		run := func(memo bool) *Report {
			cfg := probeConfig(c.preempt, c.pinned)
			cfg.Memo = memo
			rep, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("preempt=%v pinned=%v memo=%v: %v", c.preempt, c.pinned, memo, err)
			}
			return rep
		}
		naive, memo := run(false), run(true)
		if !reflect.DeepEqual(naive.Entries, memo.Entries) {
			t.Errorf("preempt=%v pinned=%v: engines diverged:\nnaive %+v\nmemo  %+v",
				c.preempt, c.pinned, naive.Entries, memo.Entries)
		}
		if naive.Violations != memo.Violations || naive.Status != memo.Status {
			t.Errorf("preempt=%v pinned=%v: sentinel state diverged", c.preempt, c.pinned)
		}
	}
}

// TestProbeEntryCoverage: the report carries the four machine entry
// points plus the composed kernel-layer entry, and spends the budget.
func TestProbeEntryCoverage(t *testing.T) {
	rep, err := Run(context.Background(), probeConfig(true, false))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"handleSyscall", "handleInterrupt", "handlePageFault", "handleUndefined", "irq-response"}
	if len(rep.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(rep.Entries), len(want))
	}
	total := 0
	for i, e := range rep.Entries {
		if e.Name != want[i] {
			t.Errorf("entry %d named %q, want %q", i, e.Name, want[i])
		}
		total += e.Evals
	}
	if total != rep.Budget {
		t.Errorf("entries spent %d evals, budget was %d", total, rep.Budget)
	}
}

// TestProbeCapturesNewMax: the kernel-layer search runs with the
// flight recorder armed on every new observed maximum, so a campaign
// that improved at least once must carry captures, each stamped
// "new-max" and holding a trailing event window.
func TestProbeCapturesNewMax(t *testing.T) {
	rep, err := Run(context.Background(), probeConfig(true, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Captures) == 0 {
		t.Fatal("no flight captures from a search that observed maxima")
	}
	for _, c := range rep.Captures {
		if c.Reason != "new-max" {
			t.Errorf("capture reason %q, want new-max", c.Reason)
		}
		if len(c.Events) == 0 {
			t.Errorf("capture carries no trace events")
		}
	}
}

// TestGenomeClampFeasible: every mutated or random genome stays inside
// the feasible region — retype clears bounded (the nopreempt
// soundness cap), pool capacity respected, knobs in range.
func TestGenomeClampFeasible(t *testing.T) {
	s := &kernelSearch{rng: rand.New(rand.NewSource(7)), pool: 8}
	g := s.random()
	for i := 0; i < 2000; i++ {
		if i%3 == 0 {
			g = s.random()
		} else {
			g = s.mutate(g)
		}
		if int(g.RetypeCount)<<g.RetypeBits > maxRetypeBytes {
			t.Fatalf("genome %v clears %d bytes, cap %d", g, int(g.RetypeCount)<<g.RetypeBits, maxRetypeBytes)
		}
		if g.Waiters+g.Sleepers+2 > s.pool {
			t.Fatalf("genome %v oversubscribes the pool", g)
		}
		if g.Phase < minPhase || g.Phase > maxPhase {
			t.Fatalf("genome %v phase out of window", g)
		}
		if g.Badges > g.Waiters {
			t.Fatalf("genome %v has more badges than waiters", g)
		}
		if g.DecodeDepth < 1 || g.DecodeDepth > 32 {
			t.Fatalf("genome %v decode depth out of range", g)
		}
		if g.MsgLen < 1 || g.MsgLen > 119 {
			t.Fatalf("genome %v message length out of range", g)
		}
	}
}
