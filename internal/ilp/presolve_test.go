package ilp

import (
	"math/rand"
	"testing"
)

func TestPresolveFixesZeros(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 5, true)
	y := p.AddVar("y", 3, true)
	z := p.AddVar("z", 7, true)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: LE, RHS: 0}) // x = 0
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1, y: 1}, Sense: LE, RHS: 4})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{z: 1}, Sense: LE, RHS: 2})
	fixed, st := Presolve(p)
	if st != Optimal || fixed != 1 {
		t.Fatalf("presolve = %d fixed, %v", fixed, st)
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// max 3y + 7z with y <= 4, z <= 2: 12 + 14 = 26; x eliminated.
	if !near(s.Value, 26) || !near(s.X[x], 0) {
		t.Errorf("value %v, x %v", s.Value, s.X[x])
	}
}

func TestPresolveDetectsInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1, true)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: LE, RHS: 0})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: GE, RHS: 3})
	if _, st := Presolve(p); st != Infeasible {
		t.Errorf("presolve missed the contradiction: %v", st)
	}

	p2 := NewProblem()
	a := p2.AddVar("a", 1, true)
	b := p2.AddVar("b", 1, true)
	p2.AddConstraint(Constraint{Coeffs: map[int]float64{a: 1}, Sense: EQ, RHS: 0})
	p2.AddConstraint(Constraint{Coeffs: map[int]float64{b: 1}, Sense: EQ, RHS: 0})
	// After substitution this becomes 0 >= 5: infeasible.
	p2.AddConstraint(Constraint{Coeffs: map[int]float64{a: 1, b: 1}, Sense: GE, RHS: 5})
	if _, st := Presolve(p2); st != Infeasible {
		t.Errorf("presolve missed the empty-constraint contradiction: %v", st)
	}
}

func TestPresolveNegativeCoefficientBounds(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1, true)
	// -2x >= 0  =>  x <= 0.
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: -2}, Sense: GE, RHS: 0})
	fixed, st := Presolve(p)
	if st != Optimal || fixed != 1 {
		t.Errorf("presolve = %d fixed, %v; want 1, optimal", fixed, st)
	}
}

func TestPresolveNoOpWhenNothingToDo(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1, true)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: LE, RHS: 5})
	before := p.NumConstraints()
	fixed, st := Presolve(p)
	if fixed != 0 || st != Optimal || p.NumConstraints() != before {
		t.Errorf("no-op presolve changed the problem: %d fixed, %d constraints", fixed, p.NumConstraints())
	}
}

// Property: presolve preserves the optimum of random bounded ILPs.
func TestPropertyPresolvePreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		build := func() *Problem {
			p := NewProblem()
			n := 3 + rng.Intn(3)
			for i := 0; i < n; i++ {
				p.AddVar("x", float64(rng.Intn(9)-2), true)
			}
			for i := 0; i < n; i++ {
				ub := float64(rng.Intn(5)) // some become x <= 0
				p.AddConstraint(Constraint{Coeffs: map[int]float64{i: 1}, Sense: LE, RHS: ub})
			}
			for k := 0; k < 2; k++ {
				coeffs := map[int]float64{}
				for i := 0; i < n; i++ {
					if rng.Intn(2) == 0 {
						coeffs[i] = float64(rng.Intn(5) - 1)
					}
				}
				if len(coeffs) > 0 {
					p.AddConstraint(Constraint{Coeffs: coeffs, Sense: LE, RHS: float64(rng.Intn(12))})
				}
			}
			return p
		}
		// Build the identical problem twice (same rng draws):
		// capture state by rebuilding from a snapshot seed.
		seed := rng.Int63()
		rng2 := rand.New(rand.NewSource(seed))
		saved := rng
		rng = rng2
		p1 := build()
		rng = rand.New(rand.NewSource(seed))
		p2 := build()
		rng = saved

		s1, err := Solve(p1)
		if err != nil {
			t.Fatal(err)
		}
		fixed, st := Presolve(p2)
		if st == Infeasible {
			if s1.Status != Infeasible {
				t.Fatalf("trial %d: presolve infeasible but solver found %v", trial, s1.Status)
			}
			continue
		}
		s2, err := Solve(p2)
		if err != nil {
			t.Fatal(err)
		}
		if s1.Status != s2.Status || (s1.Status == Optimal && !near(s1.Value, s2.Value)) {
			t.Fatalf("trial %d: presolve changed optimum: %v/%v vs %v/%v (fixed %d)",
				trial, s1.Status, s1.Value, s2.Status, s2.Value, fixed)
		}
	}
}
