// Package ilp is a from-scratch integer linear programming solver: a
// two-phase dense simplex for the LP relaxation and branch-and-bound
// for integrality. It plays the role of the "off-the-shelf ILP solver"
// the paper feeds its IPET problems to (§5.2).
//
// Problems are maximisation over non-negative variables with <=, >=
// and = constraints. IPET flow problems are network-flow-like, so the
// LP relaxation is usually integral and branch-and-bound rarely
// branches; the solver nevertheless handles general problems.
package ilp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sense is a constraint's comparison direction.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // =
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Constraint is sum(Coeffs[i] * x_i) Sense RHS.
type Constraint struct {
	// Coeffs maps variable index to coefficient; absent means 0.
	Coeffs map[int]float64
	Sense  Sense
	RHS    float64
	// Label is an optional human-readable name for debugging and
	// the LP dump.
	Label string
}

// Problem is an ILP: maximise Objective·x subject to Constraints,
// x >= 0, and x integer where Integer is set.
type Problem struct {
	names     []string
	objective []float64
	cons      []Constraint
	integer   []bool
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddVar adds a variable with the given objective coefficient and
// returns its index. If integer is true the variable is constrained
// integral.
func (p *Problem) AddVar(name string, objCoeff float64, integer bool) int {
	p.names = append(p.names, name)
	p.objective = append(p.objective, objCoeff)
	p.integer = append(p.integer, integer)
	return len(p.names) - 1
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.names) }

// Name returns a variable's name.
func (p *Problem) Name(i int) string { return p.names[i] }

// SetObjective replaces a variable's objective coefficient.
func (p *Problem) SetObjective(i int, c float64) { p.objective[i] = c }

// AddConstraint appends a constraint. Coefficient maps are retained,
// not copied.
func (p *Problem) AddConstraint(c Constraint) { p.cons = append(p.cons, c) }

// NumConstraints returns the number of constraints.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Solution is the result of solving a problem.
type Solution struct {
	Status Status
	// Value is the objective value (meaningful when Optimal).
	Value float64
	// X holds the variable values (meaningful when Optimal).
	X []float64
	// Pivots counts simplex pivots across both phases and all
	// branch-and-bound nodes — the solver-effort metric the
	// pipeline's Stats() reports.
	Pivots int
}

const (
	tol = 1e-7
	// maxNodes bounds branch-and-bound; IPET problems are near-
	// integral so hitting it indicates a malformed problem.
	maxNodes = 100000
)

// Solve solves the ILP.
func Solve(p *Problem) (*Solution, error) {
	lp, err := solveLP(p, nil)
	if err != nil {
		return nil, err
	}
	if lp.Status != Optimal {
		return lp, nil
	}
	if intFeasible(p, lp.X) {
		roundInts(p, lp)
		return lp, nil
	}
	return branchAndBound(p, lp)
}

// intFeasible reports whether all integer variables are integral.
func intFeasible(p *Problem, x []float64) bool {
	for i, isInt := range p.integer {
		if isInt && math.Abs(x[i]-math.Round(x[i])) > 1e-5 {
			return false
		}
	}
	return true
}

func roundInts(p *Problem, s *Solution) {
	for i, isInt := range p.integer {
		if isInt {
			s.X[i] = math.Round(s.X[i])
		}
	}
}

// bound is an extra variable bound imposed by branching.
type bound struct {
	v     int
	upper bool // true: x_v <= val; false: x_v >= val
	val   float64
}

func branchAndBound(p *Problem, root *Solution) (*Solution, error) {
	type node struct {
		bounds []bound
		relax  float64 // LP bound of parent, for pruning
	}
	var best *Solution
	stack := []node{{relax: root.Value}}
	nodes := 0
	pivots := root.Pivots
	defer func() {
		if best != nil {
			best.Pivots = pivots
		}
	}()
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		if nodes > maxNodes {
			return nil, fmt.Errorf("ilp: branch-and-bound exceeded %d nodes", maxNodes)
		}
		if best != nil && n.relax <= best.Value+tol {
			continue
		}
		lp, err := solveLP(p, n.bounds)
		if err != nil {
			return nil, err
		}
		pivots += lp.Pivots
		if lp.Status != Optimal {
			continue
		}
		if best != nil && lp.Value <= best.Value+tol {
			continue
		}
		// Find the most fractional integer variable.
		frac, fv := -1, 0.0
		for i, isInt := range p.integer {
			if !isInt {
				continue
			}
			f := math.Abs(lp.X[i] - math.Round(lp.X[i]))
			if f > 1e-5 && f > fv {
				frac, fv = i, f
			}
		}
		if frac < 0 {
			roundInts(p, lp)
			if best == nil || lp.Value > best.Value {
				best = lp
			}
			continue
		}
		lo := math.Floor(lp.X[frac])
		down := append(append([]bound{}, n.bounds...), bound{v: frac, upper: true, val: lo})
		up := append(append([]bound{}, n.bounds...), bound{v: frac, upper: false, val: lo + 1})
		stack = append(stack, node{bounds: down, relax: lp.Value}, node{bounds: up, relax: lp.Value})
	}
	if best == nil {
		return &Solution{Status: Infeasible, Pivots: pivots}, nil
	}
	return best, nil
}

// solveLP solves the LP relaxation with extra branching bounds using a
// two-phase dense simplex.
func solveLP(p *Problem, extra []bound) (*Solution, error) {
	n := len(p.names)

	// Collect rows: every constraint, with RHS made non-negative.
	type row struct {
		coeffs []float64
		sense  Sense
		rhs    float64
	}
	rows := make([]row, 0, len(p.cons)+len(extra))
	addRow := func(coeffs map[int]float64, sense Sense, rhs float64) {
		r := row{coeffs: make([]float64, n), sense: sense, rhs: rhs}
		for v, c := range coeffs {
			if v < 0 || v >= n {
				panic(fmt.Sprintf("ilp: constraint references variable %d of %d", v, n))
			}
			r.coeffs[v] += c
		}
		if r.rhs < 0 {
			for i := range r.coeffs {
				r.coeffs[i] = -r.coeffs[i]
			}
			r.rhs = -r.rhs
			switch r.sense {
			case LE:
				r.sense = GE
			case GE:
				r.sense = LE
			}
		}
		rows = append(rows, r)
	}
	for _, c := range p.cons {
		addRow(c.Coeffs, c.Sense, c.RHS)
	}
	for _, b := range extra {
		s := LE
		if !b.upper {
			s = GE
		}
		addRow(map[int]float64{b.v: 1}, s, b.val)
	}

	m := len(rows)
	// Column layout: structural | slack/surplus | artificial | RHS.
	nSlack := 0
	for _, r := range rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	nArt := 0
	for _, r := range rows {
		if r.sense != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	tab := make([][]float64, m+1) // last row is the objective (z) row
	for i := range tab {
		tab[i] = make([]float64, total+1)
	}
	basis := make([]int, m)
	slackAt, artAt := n, n+nSlack
	artCols := make([]int, 0, nArt)
	for i, r := range rows {
		copy(tab[i], r.coeffs)
		tab[i][total] = r.rhs
		switch r.sense {
		case LE:
			tab[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			tab[i][slackAt] = -1
			slackAt++
			tab[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			tab[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
	}

	z := tab[m]
	pivots := 0
	if nArt > 0 {
		// Phase 1: minimise sum of artificials == maximise
		// -(sum). z-row starts as the sum of all artificial rows
		// (negated reduced costs for basic artificials).
		for i, r := range rows {
			if r.sense == LE {
				continue
			}
			for j := 0; j <= total; j++ {
				z[j] -= tab[i][j]
			}
		}
		// Basic columns must have zero reduced cost: each
		// artificial's own +1 entry was just subtracted, but its
		// objective coefficient (-1) cancels it.
		for _, c := range artCols {
			z[c] = 0
		}
		n1, err := pivotLoop(tab, basis, total)
		pivots += n1
		if err != nil {
			return nil, err
		}
		if z[total] < -1e-6 {
			return &Solution{Status: Infeasible, Pivots: pivots}, nil
		}
		// Drive artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if !isArt(basis[i], n+nSlack) {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(tab[i][j]) > tol {
					pivot(tab, basis, i, j, total)
					pivots++
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; zero it so it cannot
				// interfere.
				for j := 0; j <= total; j++ {
					if j < n+nSlack {
						tab[i][j] = 0
					}
				}
			}
		}
		// Erase artificial columns so phase 2 cannot re-enter them.
		for _, c := range artCols {
			for i := 0; i <= m; i++ {
				tab[i][c] = 0
			}
		}
	}

	// Phase 2: install the real objective. z-row: -c_j plus
	// corrections for basic variables.
	for j := 0; j <= total; j++ {
		z[j] = 0
	}
	for j := 0; j < n; j++ {
		z[j] = -p.objective[j]
	}
	for i := 0; i < m; i++ {
		b := basis[i]
		if b < n && p.objective[b] != 0 {
			c := p.objective[b]
			for j := 0; j <= total; j++ {
				z[j] += c * tab[i][j]
			}
		}
	}
	n2, err := pivotLoop(tab, basis, total)
	pivots += n2
	if err != nil {
		if err == errUnbounded {
			return &Solution{Status: Unbounded, Pivots: pivots}, nil
		}
		return nil, err
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = tab[i][total]
		}
	}
	return &Solution{Status: Optimal, Value: z[total], X: x, Pivots: pivots}, nil
}

func isArt(col, artStart int) bool { return col >= artStart }

var errUnbounded = fmt.Errorf("ilp: unbounded")

// pivotLoop runs simplex pivots until optimality, returning the number
// of pivots performed. It uses Dantzig's rule with a switch to Bland's
// rule after a stall budget, guaranteeing termination.
func pivotLoop(tab [][]float64, basis []int, total int) (int, error) {
	m := len(basis)
	z := tab[m]
	maxIters := 200 * (m + total + 1)
	blandAfter := maxIters / 2
	for iter := 0; ; iter++ {
		if iter > maxIters {
			return iter, fmt.Errorf("ilp: simplex did not converge in %d iterations", maxIters)
		}
		// Entering column: most negative reduced cost (Dantzig),
		// or first negative (Bland).
		col := -1
		if iter < blandAfter {
			best := -tol
			for j := 0; j < total; j++ {
				if z[j] < best {
					best = z[j]
					col = j
				}
			}
		} else {
			for j := 0; j < total; j++ {
				if z[j] < -tol {
					col = j
					break
				}
			}
		}
		if col < 0 {
			return iter, nil // optimal
		}
		// Ratio test; Bland tie-break on basis index.
		row, bestRatio := -1, math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][col]
			if a <= tol {
				continue
			}
			r := tab[i][total] / a
			if r < bestRatio-tol || (r < bestRatio+tol && (row < 0 || basis[i] < basis[row])) {
				bestRatio = r
				row = i
			}
		}
		if row < 0 {
			return iter, errUnbounded
		}
		pivot(tab, basis, row, col, total)
	}
}

// pivot performs a full tableau pivot on (row, col).
func pivot(tab [][]float64, basis []int, row, col, total int) {
	pr := tab[row]
	inv := 1 / pr[col]
	for j := 0; j <= total; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		ri := tab[i]
		for j := 0; j <= total; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0 // exact
	}
	basis[row] = col
}

// WriteLP renders the problem in a CPLEX-LP-like text format for
// debugging, mirroring the ILP dumps the paper's toolchain produced.
func (p *Problem) WriteLP() string {
	var sb strings.Builder
	sb.WriteString("Maximize\n obj:")
	for i, c := range p.objective {
		if c != 0 {
			fmt.Fprintf(&sb, " %+g %s", c, p.names[i])
		}
	}
	sb.WriteString("\nSubject To\n")
	for k, c := range p.cons {
		label := c.Label
		if label == "" {
			label = fmt.Sprintf("c%d", k)
		}
		fmt.Fprintf(&sb, " %s:", label)
		vars := make([]int, 0, len(c.Coeffs))
		for v := range c.Coeffs {
			vars = append(vars, v)
		}
		sort.Ints(vars)
		for _, v := range vars {
			fmt.Fprintf(&sb, " %+g %s", c.Coeffs[v], p.names[v])
		}
		fmt.Fprintf(&sb, " %s %g\n", c.Sense, c.RHS)
	}
	sb.WriteString("Generals\n")
	for i, isInt := range p.integer {
		if isInt {
			fmt.Fprintf(&sb, " %s", p.names[i])
		}
	}
	sb.WriteString("\nEnd\n")
	return sb.String()
}
