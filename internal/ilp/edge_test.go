package ilp

import (
	"math"
	"testing"
)

// TestSolveEdgeCases drives the solver through the degenerate shapes a
// malformed IPET encoding can produce — no variables, no constraints,
// contradictions, unbounded rays, variables pinned before the simplex
// runs — and asserts the reported Status (by its wire string, which is
// what error messages and logs carry) plus the Pivots accounting.
func TestSolveEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		build     func() *Problem
		status    string
		value     float64 // checked only when optimal
		wantsWork bool    // expect at least one simplex pivot
	}{
		{
			name:   "empty problem",
			build:  func() *Problem { return NewProblem() },
			status: "optimal",
			value:  0,
		},
		{
			name: "vars but no constraints, zero objective",
			build: func() *Problem {
				p := NewProblem()
				p.AddVar("x", 0, false)
				p.AddVar("y", 0, false)
				return p
			},
			status: "optimal",
			value:  0,
		},
		{
			name: "vars but no constraints, positive objective",
			build: func() *Problem {
				p := NewProblem()
				p.AddVar("x", 1, false)
				return p
			},
			status: "unbounded",
		},
		{
			name: "contradictory bounds",
			build: func() *Problem {
				p := NewProblem()
				x := p.AddVar("x", 1, false)
				p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: LE, RHS: 1})
				p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: GE, RHS: 5})
				return p
			},
			status:    "infeasible",
			wantsWork: true,
		},
		{
			name: "zero-RHS equality forces everything to zero",
			build: func() *Problem {
				p := NewProblem()
				x := p.AddVar("x", 3, false)
				y := p.AddVar("y", 2, false)
				p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1, y: 1}, Sense: EQ, RHS: 0})
				return p
			},
			status: "optimal",
			value:  0,
		},
		{
			name: "unbounded ray despite one binding constraint",
			build: func() *Problem {
				p := NewProblem()
				x := p.AddVar("x", 1, false)
				y := p.AddVar("y", 1, false)
				// Only x is bounded; y can grow without limit.
				p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: LE, RHS: 4})
				_ = y
				return p
			},
			status: "unbounded",
		},
		{
			name: "integer infeasible from fractional-only window",
			build: func() *Problem {
				p := NewProblem()
				// 2x = 1 has the LP solution x = 0.5 and no integer one.
				x := p.AddVar("x", 1, true)
				p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 2}, Sense: EQ, RHS: 1})
				return p
			},
			status:    "infeasible",
			wantsWork: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sol, err := Solve(c.build())
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if got := sol.Status.String(); got != c.status {
				t.Fatalf("status = %q, want %q", got, c.status)
			}
			if c.status == "optimal" && math.Abs(sol.Value-c.value) > tol {
				t.Errorf("value = %v, want %v", sol.Value, c.value)
			}
			if sol.Pivots < 0 {
				t.Errorf("negative pivot count %d", sol.Pivots)
			}
			if c.wantsWork && sol.Pivots == 0 {
				t.Errorf("solver reported 0 pivots for a problem requiring simplex work")
			}
		})
	}
}

// TestPresolveAlreadyFixedVars: re-presolving a problem whose zero
// variables were already eliminated must be a no-op — same fix count
// semantics, same optimum, stable variable indices.
func TestPresolveAlreadyFixedVars(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 5, false)
	y := p.AddVar("y", 3, false)
	z := p.AddVar("z", 2, false)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: LE, RHS: 0}) // x := 0
	p.AddConstraint(Constraint{Coeffs: map[int]float64{y: 1, x: 1}, Sense: LE, RHS: 7})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{z: 1}, Sense: LE, RHS: 4})

	fixed1, st1 := Presolve(p)
	if st1.String() != "optimal" || fixed1 != 1 {
		t.Fatalf("first presolve: fixed=%d status=%v, want 1/optimal", fixed1, st1)
	}
	if p.NumVars() != 3 {
		t.Fatalf("presolve removed variables: NumVars=%d, want 3 (indices must stay stable)", p.NumVars())
	}

	fixed2, st2 := Presolve(p)
	if st2.String() != "optimal" || fixed2 != 0 {
		t.Fatalf("second presolve: fixed=%d status=%v, want 0/optimal (idempotent)", fixed2, st2)
	}

	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status.String() != "optimal" || math.Abs(sol.Value-29) > tol {
		t.Fatalf("post-presolve solve = %v/%v, want optimal/29 (3*7 + 2*4)", sol.Status, sol.Value)
	}
	if sol.X[x] > tol {
		t.Errorf("fixed variable x = %v, want 0", sol.X[x])
	}
	if math.Abs(sol.X[y]-7) > tol || math.Abs(sol.X[z]-4) > tol {
		t.Errorf("solution x=%v, want y=7 z=4", sol.X)
	}
}

// TestPivotsAccumulateAcrossBranchAndBound: an integer problem that
// needs branching must report strictly more pivots than its LP
// relaxation alone.
func TestPivotsAccumulateAcrossBranchAndBound(t *testing.T) {
	build := func(integer bool) *Problem {
		p := NewProblem()
		x := p.AddVar("x", 5, integer)
		y := p.AddVar("y", 4, integer)
		p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 6, y: 4}, Sense: LE, RHS: 24})
		p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1, y: 2}, Sense: LE, RHS: 6})
		return p
	}
	relaxed, err := Solve(build(false))
	if err != nil {
		t.Fatal(err)
	}
	integral, err := Solve(build(true))
	if err != nil {
		t.Fatal(err)
	}
	// LP optimum is fractional (x=3, y=1.5), so the integer solve must
	// branch and therefore pivot more.
	if relaxed.Status != Optimal || integral.Status != Optimal {
		t.Fatalf("status relaxed=%v integral=%v", relaxed.Status, integral.Status)
	}
	if integral.Value > relaxed.Value+tol {
		t.Errorf("integer optimum %v exceeds relaxation %v", integral.Value, relaxed.Value)
	}
	if integral.Pivots <= relaxed.Pivots {
		t.Errorf("B&B pivots %d not greater than root LP's %d", integral.Pivots, relaxed.Pivots)
	}
}
