package ilp

import "math"

// Presolve simplifies a problem in place before the simplex sees it,
// the way production solvers trim IPET problems: variables forced to
// zero by `x <= 0` bounds are eliminated from every constraint,
// constraints that become empty are dropped (or reported infeasible if
// unsatisfiable), and duplicate single-variable upper bounds are
// merged. It returns the number of variables fixed at zero and an
// Infeasible status when a contradiction is already visible.
//
// Presolve never removes variables (indices must stay stable for the
// caller); fixed variables keep their column but no longer appear in
// any constraint and have their objective coefficient zeroed, so the
// simplex leaves them at zero.
func Presolve(p *Problem) (fixedZero int, status Status) {
	n := p.NumVars()
	zero := make([]bool, n)

	// Pass 1: find x_v <= b with b <= 0 (and x >= 0 implicit):
	// x_v = 0. Also detect immediate contradictions x_v >= b with
	// b > 0 combined with x_v <= 0.
	lower := make([]float64, n) // best known lower bound (>= 0)
	upper := make([]float64, n)
	for i := range upper {
		upper[i] = math.Inf(1)
	}
	for _, c := range p.cons {
		// A sum of non-negatively weighted variables bounded above
		// by zero forces every participant to zero — the shape an
		// "executes at most 0 times" IPET constraint takes.
		if len(c.Coeffs) > 1 && c.Sense != GE && c.RHS <= tol {
			allPos := true
			for _, coeff := range c.Coeffs {
				if coeff <= 0 {
					allPos = false
					break
				}
			}
			if allPos && c.RHS < -tol {
				return 0, Infeasible
			}
			if allPos {
				for v := range c.Coeffs {
					upper[v] = 0
				}
				continue
			}
		}
		if len(c.Coeffs) != 1 {
			continue
		}
		for v, coeff := range c.Coeffs {
			if coeff == 0 {
				continue
			}
			bound := c.RHS / coeff
			switch {
			case c.Sense == LE && coeff > 0, c.Sense == GE && coeff < 0:
				if bound < upper[v] {
					upper[v] = bound
				}
			case c.Sense == GE && coeff > 0, c.Sense == LE && coeff < 0:
				if bound > lower[v] {
					lower[v] = bound
				}
			case c.Sense == EQ:
				if bound < upper[v] {
					upper[v] = bound
				}
				if bound > lower[v] {
					lower[v] = bound
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if upper[v] < -tol || lower[v] > upper[v]+tol {
			return 0, Infeasible
		}
		if upper[v] <= tol {
			zero[v] = true
			fixedZero++
		}
	}
	if fixedZero == 0 {
		return 0, Optimal
	}

	// Pass 2: substitute the zeros out.
	var kept []Constraint
	for _, c := range p.cons {
		changed := false
		for v := range c.Coeffs {
			if zero[v] {
				changed = true
				break
			}
		}
		if changed {
			nc := Constraint{Coeffs: make(map[int]float64, len(c.Coeffs)), Sense: c.Sense, RHS: c.RHS, Label: c.Label}
			for v, coeff := range c.Coeffs {
				if !zero[v] {
					nc.Coeffs[v] = coeff
				}
			}
			c = nc
		}
		if len(c.Coeffs) == 0 {
			// Constant constraint: check satisfiability, drop.
			switch c.Sense {
			case LE:
				if 0 > c.RHS+tol {
					return fixedZero, Infeasible
				}
			case GE:
				if 0 < c.RHS-tol {
					return fixedZero, Infeasible
				}
			case EQ:
				if math.Abs(c.RHS) > tol {
					return fixedZero, Infeasible
				}
			}
			continue
		}
		kept = append(kept, c)
	}
	p.cons = kept
	for v := 0; v < n; v++ {
		if zero[v] {
			p.objective[v] = 0
		}
	}
	return fixedZero, Optimal
}
