package ilp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-5 }

func TestSimpleLP(t *testing.T) {
	// max 3x + 2y  s.t. x + y <= 4; x + 3y <= 6
	// optimum at (4, 0): value 12.
	p := NewProblem()
	x := p.AddVar("x", 3, false)
	y := p.AddVar("y", 2, false)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1, y: 1}, Sense: LE, RHS: 4})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1, y: 3}, Sense: LE, RHS: 6})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.Value, 12) {
		t.Fatalf("got %v value %v, want optimal 12", s.Status, s.Value)
	}
	if !near(s.X[x], 4) || !near(s.X[y], 0) {
		t.Errorf("solution (%v, %v), want (4, 0)", s.X[x], s.X[y])
	}
}

func TestEqualityAndGE(t *testing.T) {
	// max x + y  s.t. x + y = 10; x >= 3; y >= 2  -> 10.
	p := NewProblem()
	x := p.AddVar("x", 1, false)
	y := p.AddVar("y", 1, false)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1, y: 1}, Sense: EQ, RHS: 10})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: GE, RHS: 3})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{y: 1}, Sense: GE, RHS: 2})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.Value, 10) {
		t.Fatalf("got %v value %v, want optimal 10", s.Status, s.Value)
	}
	if s.X[x] < 3-1e-6 || s.X[y] < 2-1e-6 {
		t.Errorf("solution (%v, %v) violates lower bounds", s.X[x], s.X[y])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1, false)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: LE, RHS: 1})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: GE, RHS: 2})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1, false)
	y := p.AddVar("y", 0, false)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{y: 1}, Sense: LE, RHS: 5})
	_ = x
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("got %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalisation(t *testing.T) {
	// x - y >= -2 with max -x + y: optimum y = x + 2 at x = 0 -> 2.
	p := NewProblem()
	x := p.AddVar("x", -1, false)
	y := p.AddVar("y", 1, false)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1, y: -1}, Sense: GE, RHS: -2})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 1}, Sense: LE, RHS: 10})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{y: 1}, Sense: LE, RHS: 100})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.Value, 2) {
		t.Fatalf("got %v value %v, want optimal 2", s.Status, s.Value)
	}
}

func TestIntegerKnapsack(t *testing.T) {
	// max 8a + 11b + 6c + 4d s.t. 5a+7b+4c+3d <= 14, vars in {0,1}.
	// LP relaxation is fractional; ILP optimum is a+b+d = 23... check:
	// a+b: 12 weight 12, +d: 15 > 14. a+c+d: 18 weight 12. b+c+d: 21 weight 14. -> 21.
	p := NewProblem()
	vals := []float64{8, 11, 6, 4}
	wts := []float64{5, 7, 4, 3}
	var vs []int
	for i, v := range vals {
		vi := p.AddVar(string(rune('a'+i)), v, true)
		vs = append(vs, vi)
		p.AddConstraint(Constraint{Coeffs: map[int]float64{vi: 1}, Sense: LE, RHS: 1})
	}
	knap := map[int]float64{}
	for i, vi := range vs {
		knap[vi] = wts[i]
	}
	p.AddConstraint(Constraint{Coeffs: knap, Sense: LE, RHS: 14})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.Value, 21) {
		t.Fatalf("got %v value %v, want optimal 21", s.Status, s.Value)
	}
	for _, vi := range vs {
		r := math.Round(s.X[vi])
		if !near(s.X[vi], r) || (r != 0 && r != 1) {
			t.Errorf("x[%d] = %v, want 0/1 integral", vi, s.X[vi])
		}
	}
}

func TestFlowLikeProblem(t *testing.T) {
	// A tiny IPET-shaped problem: entry e with count 1; branch to a
	// or b; join j. max 10a + 50b + 5j s.t. flow conservation.
	p := NewProblem()
	e := p.AddVar("e", 1, true)
	a := p.AddVar("a", 10, true)
	b := p.AddVar("b", 50, true)
	j := p.AddVar("j", 5, true)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{e: 1}, Sense: EQ, RHS: 1})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{a: 1, b: 1, e: -1}, Sense: EQ, RHS: 0})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{j: 1, a: -1, b: -1}, Sense: EQ, RHS: 0})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// e=1, b=1, j=1 -> 1 + 50 + 5 = 56.
	if s.Status != Optimal || !near(s.Value, 56) {
		t.Fatalf("got %v value %v, want optimal 56", s.Status, s.Value)
	}
	if !near(s.X[b], 1) || !near(s.X[a], 0) {
		t.Errorf("flow picked a=%v b=%v, want the expensive arm", s.X[a], s.X[b])
	}
}

func TestDegenerateCycling(t *testing.T) {
	// A classically degenerate problem (Beale's example scaled);
	// must terminate via the Bland fallback.
	p := NewProblem()
	x1 := p.AddVar("x1", 0.75, false)
	x2 := p.AddVar("x2", -150, false)
	x3 := p.AddVar("x3", 0.02, false)
	x4 := p.AddVar("x4", -6, false)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x1: 0.25, x2: -60, x3: -0.04, x4: 9}, Sense: LE, RHS: 0})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x1: 0.5, x2: -90, x3: -0.02, x4: 3}, Sense: LE, RHS: 0})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x3: 1}, Sense: LE, RHS: 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.Value, 0.05) {
		t.Fatalf("got %v value %v, want optimal 0.05", s.Status, s.Value)
	}
}

func TestWriteLPFormat(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 3, true)
	p.AddConstraint(Constraint{Coeffs: map[int]float64{x: 2}, Sense: LE, RHS: 7, Label: "cap"})
	lp := p.WriteLP()
	for _, want := range []string{"Maximize", "+3 x", "cap:", "+2 x <= 7", "Generals", "End"} {
		if !strings.Contains(lp, want) {
			t.Errorf("LP dump missing %q:\n%s", want, lp)
		}
	}
}

// bruteForce enumerates integer points of a small bounded ILP.
func bruteForce(obj []float64, cons []Constraint, ub int) float64 {
	n := len(obj)
	best := math.Inf(-1)
	x := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			for _, c := range cons {
				sum := 0.0
				for v, co := range c.Coeffs {
					sum += co * float64(x[v])
				}
				switch c.Sense {
				case LE:
					if sum > c.RHS+1e-9 {
						return
					}
				case GE:
					if sum < c.RHS-1e-9 {
						return
					}
				case EQ:
					if math.Abs(sum-c.RHS) > 1e-9 {
						return
					}
				}
			}
			v := 0.0
			for j, c := range obj {
				v += c * float64(x[j])
			}
			if v > best {
				best = v
			}
			return
		}
		for v := 0; v <= ub; v++ {
			x[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// Property: on random small bounded ILPs the solver matches brute force.
func TestPropertyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3) // 2..4 vars
		const ub = 4
		p := NewProblem()
		obj := make([]float64, n)
		for i := 0; i < n; i++ {
			obj[i] = float64(rng.Intn(11) - 3)
			p.AddVar("x"+string(rune('0'+i)), obj[i], true)
		}
		var cons []Constraint
		// Upper bounds keep it bounded.
		for i := 0; i < n; i++ {
			c := Constraint{Coeffs: map[int]float64{i: 1}, Sense: LE, RHS: ub}
			cons = append(cons, c)
			p.AddConstraint(c)
		}
		for k := 0; k < 1+rng.Intn(3); k++ {
			coeffs := map[int]float64{}
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					coeffs[i] = float64(rng.Intn(7) - 2)
				}
			}
			if len(coeffs) == 0 {
				continue
			}
			sense := []Sense{LE, GE}[rng.Intn(2)]
			rhs := float64(rng.Intn(15) - 3)
			c := Constraint{Coeffs: coeffs, Sense: sense, RHS: rhs}
			cons = append(cons, c)
			p.AddConstraint(c)
		}
		want := bruteForce(obj, cons, ub)
		s, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, p.WriteLP())
		}
		if math.IsInf(want, -1) {
			if s.Status != Infeasible {
				t.Errorf("trial %d: got %v value %v, want infeasible\n%s", trial, s.Status, s.Value, p.WriteLP())
			}
			continue
		}
		if s.Status != Optimal || !near(s.Value, want) {
			t.Errorf("trial %d: got %v value %v, brute force %v\n%s", trial, s.Status, s.Value, want, p.WriteLP())
		}
	}
}
