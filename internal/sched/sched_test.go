package sched

import (
	"math/rand"
	"testing"

	"verikern/internal/kobj"
)

func mkTCB(prio uint8, state kobj.ThreadState) *kobj.TCB {
	return &kobj.TCB{Prio: prio, State: state}
}

func allKinds() []Kind { return []Kind{Lazy, Benno, BennoBitmap} }

func TestChoosePicksHighestPriority(t *testing.T) {
	for _, k := range allKinds() {
		s := New(k)
		lo := mkTCB(10, kobj.ThreadRunnable)
		hi := mkTCB(200, kobj.ThreadRunnable)
		mid := mkTCB(100, kobj.ThreadRunnable)
		s.Enqueue(lo)
		s.Enqueue(hi)
		s.Enqueue(mid)
		got, _ := s.ChooseThread()
		if got != hi {
			t.Errorf("%v: chose prio %d, want 200", k, got.Prio)
		}
		got, _ = s.ChooseThread()
		if got != mid {
			t.Errorf("%v: second choice prio %d, want 100", k, got.Prio)
		}
	}
}

func TestChooseFIFOWithinPriority(t *testing.T) {
	for _, k := range allKinds() {
		s := New(k)
		a := mkTCB(50, kobj.ThreadRunnable)
		b := mkTCB(50, kobj.ThreadRunnable)
		s.Enqueue(a)
		s.Enqueue(b)
		if got, _ := s.ChooseThread(); got != a {
			t.Errorf("%v: FIFO violated", k)
		}
		if got, _ := s.ChooseThread(); got != b {
			t.Errorf("%v: FIFO violated for second thread", k)
		}
	}
}

func TestChooseIdleWhenEmpty(t *testing.T) {
	for _, k := range allKinds() {
		s := New(k)
		if got, _ := s.ChooseThread(); got != nil {
			t.Errorf("%v: chose %v from empty queues", k, got)
		}
	}
}

func TestEnqueueIdempotent(t *testing.T) {
	for _, k := range allKinds() {
		s := New(k)
		a := mkTCB(5, kobj.ThreadRunnable)
		s.Enqueue(a)
		if c := s.Enqueue(a); c != 0 {
			t.Errorf("%v: double enqueue cost %d, want 0", k, c)
		}
		got, _ := s.ChooseThread()
		if got != a {
			t.Fatalf("%v: wrong thread", k)
		}
		if got2, _ := s.ChooseThread(); got2 != nil {
			t.Errorf("%v: double enqueue duplicated the thread", k)
		}
	}
}

func TestLazyLeavesBlockedThreadsQueued(t *testing.T) {
	s := New(Lazy)
	a := mkTCB(50, kobj.ThreadRunnable)
	s.Enqueue(a)
	a.State = kobj.ThreadBlockedOnSend
	s.OnBlock(a)
	if !a.InRunQueue {
		t.Fatal("lazy scheduler dequeued a blocking thread eagerly")
	}
	// ChooseThread must lazily clean it up.
	got, cycles := s.ChooseThread()
	if got != nil {
		t.Errorf("chose blocked thread %v", got)
	}
	if a.InRunQueue {
		t.Error("blocked thread still queued after scheduling pass")
	}
	if cycles < CostDequeueBlocked {
		t.Errorf("lazy cleanup cost %d, expected at least one blocked dequeue", cycles)
	}
}

func TestLazyPathologicalCost(t *testing.T) {
	// The §3.1 pathological case: many blocked threads on one
	// priority make the scheduling pass arbitrarily expensive.
	s := New(Lazy)
	const n = 1000
	for i := 0; i < n; i++ {
		tcb := mkTCB(128, kobj.ThreadRunnable)
		s.Enqueue(tcb)
		tcb.State = kobj.ThreadBlockedOnSend
		s.OnBlock(tcb)
	}
	_, cycles := s.ChooseThread()
	if cycles < n*CostDequeueBlocked {
		t.Errorf("pathological pass cost %d, want at least %d", cycles, n*CostDequeueBlocked)
	}

	// Benno never pays this: blocked threads were never left queued.
	b := New(Benno)
	for i := 0; i < n; i++ {
		tcb := mkTCB(128, kobj.ThreadRunnable)
		b.Enqueue(tcb)
		tcb.State = kobj.ThreadBlockedOnSend
		b.OnBlock(tcb)
	}
	_, bCycles := b.ChooseThread()
	maxBenno := uint64(kobj.NumPrios*CostScanPrio + CostQueueOp)
	if bCycles > maxBenno {
		t.Errorf("benno pass cost %d, want <= %d", bCycles, maxBenno)
	}
}

func TestBennoInvariantQueueOnlyRunnable(t *testing.T) {
	for _, k := range []Kind{Benno, BennoBitmap} {
		s := New(k)
		a := mkTCB(50, kobj.ThreadRunnable)
		s.Enqueue(a)
		a.State = kobj.ThreadBlockedOnRecv
		s.OnBlock(a)
		if a.InRunQueue {
			t.Errorf("%v: blocked thread remains queued (Benno invariant violated)", k)
		}
		// Every queued thread must be runnable.
		rq := s.Queues()
		for p := 0; p < kobj.NumPrios; p++ {
			for th := rq.Q[p].Head; th != nil; th = th.SchedNext {
				if !th.State.Runnable() {
					t.Errorf("%v: non-runnable thread on queue", k)
				}
			}
		}
	}
}

func TestBitmapConstantLookup(t *testing.T) {
	s := New(BennoBitmap)
	// With only a low-priority thread, the bitmap lookup is still
	// constant cost — no scan over 255 empty priorities.
	a := mkTCB(3, kobj.ThreadRunnable)
	s.Enqueue(a)
	got, cycles := s.ChooseThread()
	if got != a {
		t.Fatal("wrong thread")
	}
	want := uint64(CostBitmapLookup + CostQueueOp + CostBitmapUpdate)
	if cycles != want {
		t.Errorf("bitmap choose cost %d, want %d", cycles, want)
	}
	// The plain Benno scan pays per priority level.
	b := New(Benno)
	b.Enqueue(mkTCB(3, kobj.ThreadRunnable))
	_, scanCycles := b.ChooseThread()
	if scanCycles <= cycles {
		t.Errorf("scan cost %d not above bitmap cost %d", scanCycles, cycles)
	}
}

func TestBitmapReflectsQueues(t *testing.T) {
	s := New(BennoBitmap)
	rq := s.Queues()
	threads := []*kobj.TCB{mkTCB(0, kobj.ThreadRunnable), mkTCB(31, kobj.ThreadRunnable),
		mkTCB(32, kobj.ThreadRunnable), mkTCB(255, kobj.ThreadRunnable)}
	for _, th := range threads {
		s.Enqueue(th)
	}
	checkBitmap(t, rq)
	for range threads {
		s.ChooseThread()
		checkBitmap(t, rq)
	}
	if rq.Top != 0 {
		t.Error("bitmap non-empty after draining all queues")
	}
}

// checkBitmap verifies the §3.2 invariant: the bitmap precisely
// reflects the run-queue state.
func checkBitmap(t *testing.T, rq *RunQueues) {
	t.Helper()
	for p := 0; p < kobj.NumPrios; p++ {
		bit := rq.Level2[p>>5]&(1<<(p&31)) != 0
		if bit != !rq.Q[p].Empty() {
			t.Fatalf("bitmap bit for prio %d = %v, queue empty = %v", p, bit, rq.Q[p].Empty())
		}
	}
	for b := 0; b < 8; b++ {
		topBit := rq.Top&(1<<b) != 0
		if topBit != (rq.Level2[b] != 0) {
			t.Fatalf("top bitmap bucket %d inconsistent", b)
		}
	}
}

func TestDirectSwitch(t *testing.T) {
	for _, k := range allKinds() {
		s := New(k)
		cur := mkTCB(100, kobj.ThreadRunning)
		hi := mkTCB(150, kobj.ThreadRunnable)
		lo := mkTCB(50, kobj.ThreadRunnable)
		if sw, _ := s.DirectSwitch(hi, cur); !sw {
			t.Errorf("%v: no direct switch to higher prio", k)
		}
		if sw, _ := s.DirectSwitch(lo, cur); sw {
			t.Errorf("%v: direct switch to lower prio", k)
		}
		if sw, _ := s.DirectSwitch(lo, nil); !sw {
			t.Errorf("%v: no direct switch with idle current", k)
		}
	}
}

func TestAtPreemptionRequeuesCurrent(t *testing.T) {
	for _, k := range allKinds() {
		s := New(k)
		cur := mkTCB(90, kobj.ThreadRunning)
		s.AtPreemption(cur)
		if !cur.InRunQueue {
			t.Errorf("%v: preempted runnable thread not requeued", k)
		}
		// A blocked current thread must not be queued.
		blocked := mkTCB(90, kobj.ThreadBlockedOnSend)
		s.AtPreemption(blocked)
		if blocked.InRunQueue {
			t.Errorf("%v: blocked thread queued at preemption", k)
		}
		s.AtPreemption(nil) // must not panic
	}
}

// Property: under random operation sequences, Benno and BennoBitmap
// always agree on the chosen thread, and queues stay well-formed.
func TestPropertyBennoBitmapEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		a := New(Benno)
		b := New(BennoBitmap)
		var ta, tb []*kobj.TCB
		for op := 0; op < 120; op++ {
			switch rng.Intn(3) {
			case 0: // enqueue a new runnable thread
				p := uint8(rng.Intn(256))
				x := mkTCB(p, kobj.ThreadRunnable)
				y := mkTCB(p, kobj.ThreadRunnable)
				a.Enqueue(x)
				b.Enqueue(y)
				ta = append(ta, x)
				tb = append(tb, y)
			case 1: // block a random queued thread
				if len(ta) == 0 {
					continue
				}
				i := rng.Intn(len(ta))
				ta[i].State = kobj.ThreadBlockedOnSend
				tb[i].State = kobj.ThreadBlockedOnSend
				a.OnBlock(ta[i])
				b.OnBlock(tb[i])
				ta = append(ta[:i], ta[i+1:]...)
				tb = append(tb[:i], tb[i+1:]...)
			case 2: // schedule
				x, _ := a.ChooseThread()
				y, _ := b.ChooseThread()
				switch {
				case x == nil && y == nil:
				case x == nil || y == nil:
					t.Fatalf("trial %d: one scheduler idle, other not", trial)
				case x.Prio != y.Prio:
					t.Fatalf("trial %d: chose prios %d vs %d", trial, x.Prio, y.Prio)
				default:
					// Remove from tracking.
					for i, th := range ta {
						if th == x {
							ta = append(ta[:i], ta[i+1:]...)
							break
						}
					}
					for i, th := range tb {
						if th == y {
							tb = append(tb[:i], tb[i+1:]...)
							break
						}
					}
				}
			}
			checkWellFormed(t, a.Queues())
			checkWellFormed(t, b.Queues())
			checkBitmap(t, b.Queues())
		}
	}
}

// checkWellFormed validates the doubly-linked queue invariants of §2.2:
// no cycles, correct back-pointers.
func checkWellFormed(t *testing.T, rq *RunQueues) {
	t.Helper()
	for p := 0; p < kobj.NumPrios; p++ {
		var prev *kobj.TCB
		seen := 0
		for th := rq.Q[p].Head; th != nil; th = th.SchedNext {
			if th.SchedPrev != prev {
				t.Fatalf("prio %d: bad back-pointer", p)
			}
			if int(th.Prio) != p {
				t.Fatalf("prio %d: queued thread has prio %d", p, th.Prio)
			}
			prev = th
			seen++
			if seen > 100000 {
				t.Fatalf("prio %d: cycle in queue", p)
			}
		}
		if rq.Q[p].Tail != prev {
			t.Fatalf("prio %d: tail mismatch", p)
		}
	}
}

// Property: lazy and Benno scheduling are decision-equivalent — they
// always pick the same next thread under identical operation sequences
// (§3.1: the redesign changes the worst-case cost, not the scheduling
// policy).
func TestPropertyLazyBennoDecisionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		lazy := New(Lazy)
		benno := New(Benno)
		var tl, tb []*kobj.TCB
		for op := 0; op < 150; op++ {
			switch rng.Intn(3) {
			case 0:
				p := uint8(rng.Intn(256))
				x := mkTCB(p, kobj.ThreadRunnable)
				y := mkTCB(p, kobj.ThreadRunnable)
				lazy.Enqueue(x)
				benno.Enqueue(y)
				tl = append(tl, x)
				tb = append(tb, y)
			case 1:
				if len(tl) == 0 {
					continue
				}
				i := rng.Intn(len(tl))
				tl[i].State = kobj.ThreadBlockedOnSend
				tb[i].State = kobj.ThreadBlockedOnSend
				lazy.OnBlock(tl[i]) // lazy: leaves it queued
				benno.OnBlock(tb[i])
				tl = append(tl[:i], tl[i+1:]...)
				tb = append(tb[:i], tb[i+1:]...)
			case 2:
				x, _ := lazy.ChooseThread()
				y, _ := benno.ChooseThread()
				switch {
				case x == nil && y == nil:
					continue
				case x == nil || y == nil:
					t.Fatalf("trial %d: lazy chose %v, benno %v", trial, x, y)
				case x.Prio != y.Prio:
					t.Fatalf("trial %d: lazy prio %d, benno prio %d", trial, x.Prio, y.Prio)
				}
				for i := range tl {
					if tl[i] == x {
						if tb[i] != y {
							t.Fatalf("trial %d: schedulers chose different threads", trial)
						}
						tl = append(tl[:i], tl[i+1:]...)
						tb = append(tb[:i], tb[i+1:]...)
						break
					}
				}
			}
		}
	}
}
