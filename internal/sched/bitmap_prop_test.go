package sched

import (
	"math/rand"
	"testing"

	"verikern/internal/kobj"
)

// naiveHighest is the O(NumPrios) reference for the two-level CLZ
// search: scan priorities from the top for a non-empty queue.
func naiveHighest(rq *RunQueues) int {
	for p := kobj.NumPrios - 1; p >= 0; p-- {
		if !rq.Q[p].Empty() {
			return p
		}
	}
	return -1
}

// checkBitmapConsistency verifies the two-level bitmap is exactly the
// occupancy of the queues: a Level2 bit per non-empty priority, a Top
// bit per non-zero Level2 word.
func checkBitmapConsistency(t *testing.T, rq *RunQueues) {
	t.Helper()
	for p := 0; p < kobj.NumPrios; p++ {
		bit := rq.Level2[p>>5]&(1<<(p&31)) != 0
		if got := !rq.Q[p].Empty(); bit != got {
			t.Fatalf("prio %d: Level2 bit %v, queue non-empty %v", p, bit, got)
		}
	}
	for b := 0; b < 8; b++ {
		bit := rq.Top&(1<<b) != 0
		if got := rq.Level2[b] != 0; bit != got {
			t.Fatalf("bucket %d: Top bit %v, Level2 non-zero %v", b, bit, got)
		}
	}
}

// TestBitmapMatchesNaiveReference drives randomized enqueue/dequeue
// sequences against the bitmap-maintained run queues and checks, after
// every operation, that the two-load/two-CLZ search agrees with the
// naive priority scan and that the bitmap mirrors queue occupancy —
// the §3.2 replacement must be behaviourally invisible.
func TestBitmapMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rq := &RunQueues{useBitmap: true}
		// A pool biased toward few distinct priorities, so queues
		// routinely hold several threads and empty out again.
		prios := make([]uint8, 12)
		for i := range prios {
			prios[i] = uint8(rng.Intn(kobj.NumPrios))
		}
		var queued []*kobj.TCB
		for op := 0; op < 400; op++ {
			if len(queued) == 0 || rng.Intn(2) == 0 {
				tc := &kobj.TCB{Prio: prios[rng.Intn(len(prios))], State: kobj.ThreadRunnable}
				rq.enqueue(tc)
				queued = append(queued, tc)
			} else {
				i := rng.Intn(len(queued))
				rq.dequeue(queued[i])
				queued = append(queued[:i], queued[i+1:]...)
			}
			if got, want := rq.highestBitmap(), naiveHighest(rq); got != want {
				t.Fatalf("trial %d op %d: highestBitmap()=%d, naive scan=%d", trial, op, got, want)
			}
			checkBitmapConsistency(t, rq)
		}
	}
}

// TestBitmapSchedulerPicksAsBenno: the bitmap scheduler must choose
// the same threads in the same order as the plain Benno scan under an
// identical randomized operation sequence — only the search cost
// changes.
func TestBitmapSchedulerPicksAsBenno(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		plain, fast := New(Benno), New(BennoBitmap)
		// Mirrored thread pools: index i on one side corresponds to
		// index i on the other.
		var pt, ft []*kobj.TCB
		for i := 0; i < 10; i++ {
			p := uint8(rng.Intn(kobj.NumPrios))
			pt = append(pt, &kobj.TCB{Prio: p, State: kobj.ThreadRunnable})
			ft = append(ft, &kobj.TCB{Prio: p, State: kobj.ThreadRunnable})
		}
		for op := 0; op < 300; op++ {
			i := rng.Intn(len(pt))
			switch rng.Intn(4) {
			case 0:
				pt[i].State, ft[i].State = kobj.ThreadRunnable, kobj.ThreadRunnable
				plain.Enqueue(pt[i])
				fast.Enqueue(ft[i])
			case 1:
				pt[i].State, ft[i].State = kobj.ThreadBlockedOnSend, kobj.ThreadBlockedOnSend
				plain.OnBlock(pt[i])
				fast.OnBlock(ft[i])
			case 2:
				a, _ := plain.ChooseThread()
				b, _ := fast.ChooseThread()
				if (a == nil) != (b == nil) {
					t.Fatalf("trial %d op %d: benno chose %v, bitmap chose %v", trial, op, a, b)
				}
				if a != nil {
					ai, bi := indexOf(pt, a), indexOf(ft, b)
					if ai != bi {
						t.Fatalf("trial %d op %d: benno chose thread %d (prio %d), bitmap thread %d (prio %d)",
							trial, op, ai, a.Prio, bi, b.Prio)
					}
				}
			case 3:
				plain.AtPreemption(pt[i])
				fast.AtPreemption(ft[i])
			}
		}
	}
}

func indexOf(pool []*kobj.TCB, t *kobj.TCB) int {
	for i, p := range pool {
		if p == t {
			return i
		}
	}
	return -1
}
