// Package sched implements the three scheduler designs the paper
// compares (§3.1–§3.2):
//
//   - Lazy scheduling (Fig. 2): blocked threads linger on the run queue
//     and are dequeued in bulk by the scheduler — O(1) IPC but a
//     pathological, effectively unbounded worst case.
//   - Benno scheduling (Fig. 3): only runnable threads are queued; an
//     unblocked thread that can run immediately is switched to directly
//     without queueing, and queue consistency is re-established at
//     preemption time. Same best case, O(1) worst case.
//   - Benno + bitmap: a two-level bitmap over the 256 priorities,
//     searched with two loads and two CLZ instructions, removing the
//     priority scan loop entirely.
//
// Scheduler operations return their cost in simulated cycles so the
// kernel can account interrupt-latency contributions; the costs are
// per-step constants matching the relative magnitudes of the paper's
// measured paths.
package sched

import (
	"fmt"
	"math/bits"

	"verikern/internal/kobj"
	"verikern/internal/ktime"
	"verikern/internal/obs"
)

// Kind selects a scheduler design.
type Kind int

// Scheduler designs.
const (
	// Lazy is the original lazy scheduler (Fig. 2).
	Lazy Kind = iota
	// Benno is the direct-switch scheduler without bitmaps (Fig. 3).
	Benno
	// BennoBitmap adds the two-level CLZ bitmap (§3.2).
	BennoBitmap
)

// String returns the design name.
func (k Kind) String() string {
	switch k {
	case Lazy:
		return "lazy"
	case Benno:
		return "benno"
	case BennoBitmap:
		return "benno+bitmap"
	default:
		return "unknown"
	}
}

// Kinds returns every scheduler design, in definition order — the
// domain of the konfig "sched.policy" key.
func Kinds() []Kind { return []Kind{Lazy, Benno, BennoBitmap} }

// ParseKind resolves a design name as printed by Kind.String.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown scheduler design %q", s)
}

// Operation costs in simulated cycles. The absolute values are
// calibrated so queue operations sit in the tens of cycles, matching
// the scale of the paper's measured kernel paths.
const (
	// CostQueueOp is one enqueue or dequeue (pointer updates).
	CostQueueOp = 15
	// CostScanPrio is testing one priority level in the Fig. 3
	// scan loop.
	CostScanPrio = 8
	// CostDequeueBlocked is the lazy scheduler's dequeue of one
	// blocked thread found on the queue (Fig. 2's schedDequeue).
	CostDequeueBlocked = 25
	// CostBitmapLookup is the bitmap search: two loads and two CLZ
	// instructions (§3.2).
	CostBitmapLookup = 10
	// CostBitmapUpdate maintains the bitmap on queue transitions.
	CostBitmapUpdate = 6
)

// Queue is one priority's run queue: an intrusive doubly-linked list
// of TCBs.
type Queue struct {
	Head, Tail *kobj.TCB
}

// Empty reports whether the queue has no threads.
func (q *Queue) Empty() bool { return q.Head == nil }

// RunQueues is the full scheduler state: one queue per priority plus
// the optional two-level bitmap.
type RunQueues struct {
	Q [kobj.NumPrios]Queue
	// Top is the first-level bitmap: bit b set means bucket b (32
	// priorities) has queued threads. Level2[b] has one bit per
	// priority within the bucket (§3.2).
	Top    uint8
	Level2 [8]uint32
	// useBitmap controls bitmap maintenance.
	useBitmap bool
}

// enqueue appends t to its priority's queue.
func (r *RunQueues) enqueue(t *kobj.TCB) {
	q := &r.Q[t.Prio]
	t.SchedPrev = q.Tail
	t.SchedNext = nil
	if q.Tail != nil {
		q.Tail.SchedNext = t
	} else {
		q.Head = t
	}
	q.Tail = t
	t.InRunQueue = true
	if r.useBitmap {
		r.Level2[t.Prio>>5] |= 1 << (t.Prio & 31)
		r.Top |= 1 << (t.Prio >> 5)
	}
}

// dequeue removes t from its priority's queue.
func (r *RunQueues) dequeue(t *kobj.TCB) {
	q := &r.Q[t.Prio]
	if t.SchedPrev != nil {
		t.SchedPrev.SchedNext = t.SchedNext
	} else {
		q.Head = t.SchedNext
	}
	if t.SchedNext != nil {
		t.SchedNext.SchedPrev = t.SchedPrev
	} else {
		q.Tail = t.SchedPrev
	}
	t.SchedNext, t.SchedPrev = nil, nil
	t.InRunQueue = false
	if r.useBitmap && q.Head == nil {
		r.Level2[t.Prio>>5] &^= 1 << (t.Prio & 31)
		if r.Level2[t.Prio>>5] == 0 {
			r.Top &^= 1 << (t.Prio >> 5)
		}
	}
}

// highestBitmap finds the highest priority with a queued thread using
// the two-level CLZ search; -1 if none.
func (r *RunQueues) highestBitmap() int {
	if r.Top == 0 {
		return -1
	}
	bucket := 7 - bits.LeadingZeros8(r.Top)
	word := r.Level2[bucket]
	prio := 31 - bits.LeadingZeros32(word)
	return bucket<<5 | prio
}

// Scheduler is the interface the kernel drives. Every method returns
// the simulated cycles it consumed.
type Scheduler interface {
	Kind() Kind
	// Enqueue makes a runnable thread eligible (no-op if queued).
	Enqueue(t *kobj.TCB) uint64
	// OnBlock is called when a thread ceases to be runnable.
	OnBlock(t *kobj.TCB) uint64
	// DirectSwitch asks whether an unblocked thread should be
	// switched to immediately instead of queued (Benno's trick);
	// cur may be nil.
	DirectSwitch(t, cur *kobj.TCB) (bool, uint64)
	// ChooseThread picks the next thread to run (nil = idle) and
	// removes it from the queue.
	ChooseThread() (*kobj.TCB, uint64)
	// AtPreemption re-establishes queue consistency for the
	// preempted current thread.
	AtPreemption(cur *kobj.TCB) uint64
	// Queues exposes the state for invariant checking.
	Queues() *RunQueues
}

// Traceable is implemented by schedulers that can emit pick events:
// the kernel hands them its tracer and cycle clock at SetTracer time.
// Both built-in schedulers implement it.
type Traceable interface {
	SetTrace(t *obs.Tracer, clk *ktime.Clock)
}

// trace is the embedded emission state shared by the scheduler
// implementations. A zero trace (nil tracer) emits nothing, at the
// cost of one predictable branch per pick.
type trace struct {
	tracer *obs.Tracer
	clock  *ktime.Clock
}

func (tr *trace) SetTrace(t *obs.Tracer, clk *ktime.Clock) {
	tr.tracer = t
	tr.clock = clk
}

// pick emits a KindSchedPick event for the chosen thread. arg2 is the
// design-specific detail: the two-level bitmap bucket for
// benno+bitmap, or the number of lazily dequeued blocked threads for
// the lazy design.
func (tr *trace) pick(t *kobj.TCB, arg2 uint64) {
	if tr.tracer == nil {
		return
	}
	prio := obs.IdleArg
	if t != nil {
		prio = uint64(t.Prio)
	}
	tr.tracer.Emit(obs.KindSchedPick, tr.clock.Now(), prio, arg2)
}

// New constructs a scheduler of the given kind.
func New(kind Kind) Scheduler {
	switch kind {
	case Lazy:
		return &lazyScheduler{}
	case Benno:
		return &bennoScheduler{}
	case BennoBitmap:
		s := &bennoScheduler{bitmap: true}
		s.rq.useBitmap = true
		return s
	default:
		panic(fmt.Sprintf("sched: unknown kind %d", kind))
	}
}

// --- Lazy scheduling (Fig. 2) ---

type lazyScheduler struct {
	rq RunQueues
	trace
}

func (s *lazyScheduler) Kind() Kind         { return Lazy }
func (s *lazyScheduler) Queues() *RunQueues { return &s.rq }

func (s *lazyScheduler) Enqueue(t *kobj.TCB) uint64 {
	if t.InRunQueue {
		return 0
	}
	s.rq.enqueue(t)
	return CostQueueOp
}

// OnBlock is lazy scheduling's defining move: the blocking thread stays
// in the run queue, to be lazily dequeued by a later ChooseThread.
func (s *lazyScheduler) OnBlock(t *kobj.TCB) uint64 { return 0 }

// DirectSwitch: the lazy design also switched directly on IPC, leaving
// the blocked partner queued.
func (s *lazyScheduler) DirectSwitch(t, cur *kobj.TCB) (bool, uint64) {
	if cur == nil || t.Prio >= cur.Prio {
		return true, 0
	}
	return false, 0
}

// ChooseThread implements Fig. 2: walk priorities from the top; dequeue
// every blocked thread encountered. The worst case dequeues every
// thread in the system.
func (s *lazyScheduler) ChooseThread() (*kobj.TCB, uint64) {
	var cycles, lazyDequeues uint64
	for prio := kobj.NumPrios - 1; prio >= 0; prio-- {
		cycles += CostScanPrio
		for t := s.rq.Q[prio].Head; t != nil; {
			next := t.SchedNext
			if t.State.Runnable() {
				s.rq.dequeue(t)
				s.pick(t, lazyDequeues)
				return t, cycles + CostQueueOp
			}
			// Lazily dequeue the blocked thread.
			s.rq.dequeue(t)
			cycles += CostDequeueBlocked
			lazyDequeues++
			t = next
		}
	}
	s.pick(nil, lazyDequeues)
	return nil, cycles
}

func (s *lazyScheduler) AtPreemption(cur *kobj.TCB) uint64 {
	if cur != nil && cur.State.Runnable() {
		return s.Enqueue(cur)
	}
	return 0
}

// --- Benno scheduling (Fig. 3), optionally with bitmaps (§3.2) ---

type bennoScheduler struct {
	rq     RunQueues
	bitmap bool
	trace
}

func (s *bennoScheduler) Kind() Kind {
	if s.bitmap {
		return BennoBitmap
	}
	return Benno
}
func (s *bennoScheduler) Queues() *RunQueues { return &s.rq }

func (s *bennoScheduler) Enqueue(t *kobj.TCB) uint64 {
	if t.InRunQueue {
		return 0
	}
	s.rq.enqueue(t)
	if s.bitmap {
		return CostQueueOp + CostBitmapUpdate
	}
	return CostQueueOp
}

// OnBlock maintains the Benno invariant: a thread that ceases to be
// runnable must leave the run queue immediately.
func (s *bennoScheduler) OnBlock(t *kobj.TCB) uint64 {
	if !t.InRunQueue {
		return 0
	}
	s.rq.dequeue(t)
	if s.bitmap {
		return CostQueueOp + CostBitmapUpdate
	}
	return CostQueueOp
}

// DirectSwitch: an unblocked thread that can execute immediately is
// switched to without entering the run queue (it may block again very
// soon).
func (s *bennoScheduler) DirectSwitch(t, cur *kobj.TCB) (bool, uint64) {
	if cur == nil || t.Prio >= cur.Prio {
		return true, 0
	}
	return false, 0
}

// ChooseThread: Fig. 3 without bitmaps (head of the highest non-empty
// priority), or the two-load/two-CLZ bitmap search with them.
func (s *bennoScheduler) ChooseThread() (*kobj.TCB, uint64) {
	if s.bitmap {
		p := s.rq.highestBitmap()
		if p < 0 {
			s.pick(nil, 0)
			return nil, CostBitmapLookup
		}
		t := s.rq.Q[p].Head
		s.rq.dequeue(t)
		s.pick(t, uint64(p>>5))
		return t, CostBitmapLookup + CostQueueOp + CostBitmapUpdate
	}
	var cycles uint64
	for prio := kobj.NumPrios - 1; prio >= 0; prio-- {
		cycles += CostScanPrio
		if t := s.rq.Q[prio].Head; t != nil {
			s.rq.dequeue(t)
			s.pick(t, uint64(prio>>5))
			return t, cycles + CostQueueOp
		}
	}
	s.pick(nil, 0)
	return nil, cycles
}

// AtPreemption: the single lazily handled thread — the preempted
// current one — is entered into the run queue if still runnable,
// re-establishing the invariant that all runnable threads are queued or
// running.
func (s *bennoScheduler) AtPreemption(cur *kobj.TCB) uint64 {
	if cur != nil && cur.State.Runnable() {
		return s.Enqueue(cur)
	}
	return 0
}
