package verikern

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"verikern/internal/fleet"
	"verikern/internal/kernel"
	"verikern/internal/konfig"
	"verikern/internal/soak"
)

// TestLatticeMatchesLegacyMatrix is the konfig equivalence proof: the
// four legacy evaluation configurations, re-expressed as lattice
// points, must reproduce the pre-konfig behaviour byte-identically —
// the WCET bounds pinned by the seed golden on the ARM1136, and the
// soak equivalence digests of the legacy-struct path on both backends.
func TestLatticeMatchesLegacyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full lattice-vs-legacy matrix: skipped in -short")
	}
	ctx := context.Background()

	t.Run("golden-bounds-arm1136", func(t *testing.T) {
		data, err := os.ReadFile(arm1136BaselinePath)
		if err != nil {
			t.Fatalf("reading seed golden: %v", err)
		}
		var golden baselineDoc
		if err := json.Unmarshal(data, &golden); err != nil {
			t.Fatal(err)
		}
		// The coherent lattice expressions of the golden's matrix rows:
		// the Figure 9 hardware axis plus the pinned and original rows.
		cases := []struct {
			prefix string
			set    map[string]string
		}{
			{"original/pin=false/base", map[string]string{
				"sched.policy": "lazy", "vspace.design": "asid",
				"preempt.delete": "false", "preempt.clear": "false",
			}},
			{"modern/pin=false/base", nil},
			{"modern/pin=true/pin1", map[string]string{"cache.l1.pinned-ways": "1"}},
			{"modern/pin=false/l2", map[string]string{"cache.l2.enabled": "true"}},
			{"modern/pin=false/l2+bpred", map[string]string{
				"cache.l2.enabled": "true", "predictor.dynamic": "true",
			}},
		}
		for _, tc := range cases {
			p, err := DefaultLatticePoint("arm1136")
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range tc.set {
				if p, err = p.Set(k, v); err != nil {
					t.Fatal(err)
				}
			}
			im, hw, err := BuildImagePoint(p)
			if err != nil {
				t.Fatalf("%s: %v", tc.prefix, err)
			}
			bounds, err := im.AnalyzeAll(ctx, hw, 0)
			if err != nil {
				t.Fatalf("%s: %v", tc.prefix, err)
			}
			for _, b := range bounds {
				key := fmt.Sprintf("%s/%s", tc.prefix, b.Entry)
				want, ok := golden.Bounds[key]
				if !ok {
					t.Errorf("golden has no entry %q", key)
					continue
				}
				if b.Cycles != want {
					t.Errorf("lattice point %s: bound[%s] = %d, golden %d", p.Hash(), key, b.Cycles, want)
				}
			}
		}
	})

	t.Run("golden-soak-arm1136", func(t *testing.T) {
		data, err := os.ReadFile(arm1136BaselinePath)
		if err != nil {
			t.Fatal(err)
		}
		var golden baselineDoc
		if err := json.Unmarshal(data, &golden); err != nil {
			t.Fatal(err)
		}
		matrix, err := konfig.LegacySoakMatrix("arm1136")
		if err != nil {
			t.Fatal(err)
		}
		for _, np := range matrix {
			rep, err := soak.Run(ctx, soak.Config{
				Label:     np.Name,
				Arch:      np.Point.Arch,
				ConfigKey: np.Point.Hash(),
				Seed:      1,
				Ops:       400,
				Workers:   2,
				Kernel:    np.Point.KernelConfig(),
				Pinned:    np.Point.Pinned(),
			})
			if err != nil {
				t.Fatalf("soak %s: %v", np.Name, err)
			}
			got := map[string]uint64{
				np.Name + "/ops":        rep.Ops,
				np.Name + "/simcycles":  rep.SimCycles,
				np.Name + "/maxlatency": rep.MaxLatency,
				np.Name + "/irq_count":  rep.Snapshot.IRQ.Count,
				np.Name + "/irq_min":    rep.Snapshot.IRQ.Min,
				np.Name + "/irq_max":    rep.Snapshot.IRQ.Max,
				np.Name + "/irq_p99":    rep.Snapshot.IRQ.P99,
				np.Name + "/bound":      rep.Bound.Cycles,
				np.Name + "/violations": rep.Bound.Violations,
			}
			for k, g := range got {
				if w, ok := golden.Soak[k]; !ok {
					t.Errorf("golden has no soak field %q", k)
				} else if g != w {
					t.Errorf("lattice point %s: soak[%s] = %d, golden %d", np.Point.Hash(), k, g, w)
				}
			}
		}
	})

	// Both backends: the lattice path (konfig-derived config, identity
	// stamped) digests byte-identical to the legacy-struct path.
	for _, archID := range []string{"arm1136", "cva6rt"} {
		t.Run("digest-"+archID, func(t *testing.T) {
			// The pre-konfig matrix, constructed exactly as the seed
			// tree's SoakConfigs did — by hand from kernel.Modern and
			// kernel.Original.
			type legacyRow struct {
				name   string
				kcfg   KernelConfig
				pinned bool
			}
			modern := kernel.Modern()
			modern.CheckInvariants = false
			noPre := modern
			noPre.PreemptionPoints = false
			lazy := kernel.Original()
			lazy.CheckInvariants = false
			legacy := []legacyRow{
				{"benno+preempt+pinned", modern, true},
				{"benno+preempt", modern, false},
				{"benno+nopreempt", noPre, false},
				{"lazy", lazy, false},
			}
			matrix, err := konfig.LegacySoakMatrix(archID)
			if err != nil {
				t.Fatal(err)
			}
			if len(matrix) != len(legacy) {
				t.Fatalf("matrix size %d != legacy %d", len(matrix), len(legacy))
			}
			for i, np := range matrix {
				lg := legacy[i]
				if np.Name != lg.name {
					t.Fatalf("matrix order: %s != %s", np.Name, lg.name)
				}
				run := func(kcfg KernelConfig, pinned bool, key string) []byte {
					rep, err := soak.Run(ctx, soak.Config{
						Label: np.Name, Arch: archID, ConfigKey: key,
						Seed: 11, Ops: 300, Workers: 2,
						Kernel: kcfg, Pinned: pinned,
					})
					if err != nil {
						t.Fatalf("soak %s on %s: %v", np.Name, archID, err)
					}
					d, err := fleet.EquivalenceDigest(rep.Snapshot)
					if err != nil {
						t.Fatal(err)
					}
					return d
				}
				legacyDigest := run(lg.kcfg, lg.pinned, "")
				latticeDigest := run(np.Point.KernelConfig(), np.Point.Pinned(), np.Point.Hash())
				if !bytes.Equal(legacyDigest, latticeDigest) {
					t.Errorf("%s on %s: lattice point %s digests differently from the legacy struct:\n--- legacy ---\n%s\n--- lattice ---\n%s",
						np.Name, archID, np.Point.Hash(), legacyDigest, latticeDigest)
				}
			}
		})
	}
}

// TestParetoSweepAcceptance runs the full two-backend DefaultSpace
// sweep the BENCH_pareto.json artifact ships: at least 50 feasible
// lattice points overall, both backends present, every row carrying a
// konfig hash, zero bound violations, and byte-stable output across
// repeated runs.
func TestParetoSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full lattice sweep: skipped in -short")
	}
	ctx := context.Background()
	render := func() ([]byte, *ParetoBench) {
		doc, err := ParetoSweep(ctx, nil, 3, 64, 4)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteParetoBench(&buf, doc); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), doc
	}
	first, doc := render()
	archs := map[string]bool{}
	total := 0
	for _, sw := range doc.Archs {
		archs[sw.Arch] = true
		total += len(sw.Points)
		for _, p := range sw.Points {
			if len(p.Konfig) != 16 {
				t.Errorf("%s: row konfig hash %q, want 16 hex digits", sw.Arch, p.Konfig)
			}
			if p.Violations != 0 {
				t.Errorf("%s: point %s has %d bound violations", sw.Arch, p.Konfig, p.Violations)
			}
		}
		if len(sw.Frontiers) == 0 {
			t.Errorf("%s: no frontiers", sw.Arch)
		}
	}
	if total < 50 {
		t.Errorf("swept %d feasible points, acceptance floor is 50", total)
	}
	if !archs["arm1136"] || !archs["cva6rt"] {
		t.Errorf("backends swept: %v, want both arm1136 and cva6rt", archs)
	}
	again, _ := render()
	if !bytes.Equal(first, again) {
		t.Error("repeated ParetoSweep is not byte-stable")
	}
}
