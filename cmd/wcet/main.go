// Command wcet runs the static worst-case execution time analysis on
// one kernel entry point and reports the bound, the worst path's
// composition, cache-classification statistics and the ILP problem
// size — the per-run detail behind the paper's Tables 1 and 2.
//
// Usage:
//
//	wcet [-entry handleSyscall] [-all] [-variant modern|original]
//	     [-arch arm1136|cva6rt] [-konfig "key=value,..."]
//	     [-l2] [-bpred] [-pin] [-observe N] [-trace] [-hot N]
//	     [-lp] [-verify] [-obligations] [-dump] [-timings]
//
// -konfig selects a configuration-lattice point instead of the legacy
// variant/feature flags: assignments are applied to the backend's
// default point, validated by the konfig rule engine (an infeasible
// combination fails with its named-rule diagnostics), and the image and
// hardware model are derived from the point. See docs/config-lattice.md
// for the key reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"verikern"
	"verikern/internal/arch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wcet: ")
	entry := flag.String("entry", string(verikern.Syscall), "entry point to analyse")
	all := flag.Bool("all", false, "analyse every entry point, in the image's deterministic order")
	variantName := flag.String("variant", "modern", "kernel variant: modern or original")
	archName := flag.String("arch", "arm1136", "hardware backend: one of "+strings.Join(verikern.Architectures(), ", "))
	l2 := flag.Bool("l2", false, "enable the L2 cache")
	bpred := flag.Bool("bpred", false, "enable the branch predictor")
	pin := flag.Bool("pin", false, "enable L1 cache pinning")
	observe := flag.Int("observe", 0, "also measure the worst path over N polluted runs")
	trace := flag.Bool("trace", false, "print the worst-case path's block sequence")
	dumpLP := flag.Bool("lp", false, "dump the generated integer linear program")
	hot := flag.Int("hot", 0, "print the N blocks contributing most to the bound")
	verify := flag.Bool("verify", false, "model-check the image's loop-bound annotations (§5.3)")
	obligations := flag.Bool("obligations", false, "print the proof obligations for the image's manual constraints (§5.2)")
	dumpImage := flag.Bool("dump", false, "print a disassembly-style listing of the kernel image")
	timings := flag.Bool("timings", false, "print solver and analysis wall times (makes output non-reproducible)")
	konfigSpec := flag.String("konfig", "", "configuration-lattice assignments \"key=value,...\" applied to the backend's default point (overrides -variant/-l2/-bpred/-pin; see docs/config-lattice.md)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var (
		im      *verikern.Image
		hw      verikern.Hardware
		variant verikern.Variant
		err     error
	)
	if *konfigSpec != "" {
		p, perr := verikern.DefaultLatticePoint(*archName)
		if perr != nil {
			log.Fatal(perr)
		}
		for _, kv := range strings.Split(*konfigSpec, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				log.Fatalf("-konfig %q: want key=value", kv)
			}
			if p, err = p.Set(strings.TrimSpace(k), strings.TrimSpace(v)); err != nil {
				log.Fatal(err)
			}
		}
		im, hw, err = verikern.BuildImagePoint(p)
		if err != nil {
			log.Fatal(err)
		}
		variant = im.Variant
		fmt.Printf("konfig:       %s  %s\n", p.Hash(), p.Listing())
	} else {
		variant = verikern.Modern
		if *variantName == "original" {
			variant = verikern.Original
		} else if *variantName != "modern" {
			log.Fatalf("unknown variant %q", *variantName)
		}
		im, err = verikern.BuildImageArch(variant, *pin, *archName)
		if err != nil {
			log.Fatal(err)
		}
		hw = verikern.Hardware{Arch: im.Arch, L2Enabled: *l2, BranchPredictor: *bpred}
		if *pin {
			hw.PinnedL1Ways = 1
		}
	}
	if *verify {
		if err := im.VerifyLoopBounds(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("loop bounds: every annotation justified by its model-checked bound")
	}
	if *obligations {
		fmt.Println("proof obligations for manual infeasible-path constraints:")
		for _, c := range im.Constraints {
			fmt.Println("  " + c.Obligation())
		}
	}
	if *dumpImage {
		if err := im.Img.Dump(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *all {
		bounds, err := im.AnalyzeAll(ctx, hw, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("kernel:       %s%s\n", variant, pinSuffix(im.Pinned))
		fmt.Printf("hardware:     arch=%s L2=%v branch-predictor=%v pinned-ways=%d\n", im.Arch, hw.L2Enabled, hw.BranchPredictor, hw.PinnedL1Ways)
		fmt.Printf("%-24s %12s %10s %8s %8s\n", "entry", "cycles", "µs", "blocks", "ilp-vars")
		for _, b := range bounds {
			fmt.Printf("%-24s %12d %10.1f %8d %8d\n",
				b.Entry, b.Cycles, b.Micros, len(b.Result.Trace), b.Result.LPVars)
		}
		return
	}

	var bd verikern.Bound
	if *dumpLP {
		bd, err = im.AnalyzeWithLP(hw, verikern.EntryPoint(*entry))
	} else {
		bd, err = im.AnalyzeContext(ctx, hw, verikern.EntryPoint(*entry))
	}
	if err != nil {
		log.Fatal(err)
	}
	r := bd.Result

	fmt.Printf("entry:        %s (%s kernel%s)\n", *entry, variant, pinSuffix(im.Pinned))
	fmt.Printf("hardware:     arch=%s L2=%v branch-predictor=%v pinned-ways=%d\n", im.Arch, hw.L2Enabled, hw.BranchPredictor, hw.PinnedL1Ways)
	fmt.Printf("bound:        %d cycles = %.1f µs\n", bd.Cycles, bd.Micros)
	fmt.Printf("cfg:          %d inlined nodes, %d loops\n", len(r.Graph.Nodes), len(r.Graph.Loops))
	if *timings {
		fmt.Printf("ilp:          %d variables, %d constraints, solved in %v\n",
			r.LPVars, r.LPConstraints, r.SolveTime)
		fmt.Printf("analysis:     %v total\n", r.AnalysisTime)
	} else {
		fmt.Printf("ilp:          %d variables, %d constraints\n", r.LPVars, r.LPConstraints)
	}
	c := r.Classified
	fmt.Printf("cache model:  fetch %d hit / %d miss; data %d hit / %d miss / %d unclassified\n",
		c.FetchHit, c.FetchMiss, c.DataHit, c.DataMiss, c.DataUnknown)
	fmt.Printf("worst path:   %d basic blocks\n", len(r.Trace))

	if *trace {
		fmt.Println("\nworst-case path:")
		for i, blk := range r.Trace {
			fmt.Printf("  %4d  %#x  %-14s (%d instrs)\n", i, blk.Addr, blk.Name, blk.NumInstrs())
			if i > 200 {
				fmt.Printf("  ... %d more blocks\n", len(r.Trace)-i)
				break
			}
		}
	}

	if *hot > 0 {
		fmt.Printf("\nhottest blocks (of %d cycles):\n", bd.Cycles)
		for _, h := range r.Hottest(*hot) {
			fmt.Printf("  %8d cycles (%4.1f%%)  ×%-5d %s\n",
				h.Cycles, 100*float64(h.Cycles)/float64(bd.Cycles), h.Count, h.Key)
		}
	}

	if *dumpLP {
		fmt.Println("\nILP problem:")
		fmt.Print(r.LPText)
	}

	if *observe > 0 {
		obs := im.Observe(hw, bd, *observe)
		fmt.Printf("\nobserved over %d polluted runs:\n", obs.Runs)
		fmt.Printf("  max:  %d cycles = %.1f µs  (ratio %.2f)\n",
			obs.Max, arch.MustLookup(im.Arch).CyclesToMicros(obs.Max), float64(bd.Cycles)/float64(obs.Max))
		fmt.Printf("  mean: %.0f cycles\n", obs.Mean)
		fmt.Printf("  min:  %d cycles\n", obs.Min)
	}
}

func pinSuffix(pin bool) string {
	if pin {
		return ", pinned"
	}
	return ""
}
