// Command kzm-sim boots the functional kernel model and runs an
// adversarial mixed-criticality workload against it, reporting the
// interrupt-response latencies a real-time subsystem would see. It is
// the "live" counterpart of the static analysis in cmd/wcet: the same
// kernel designs, exercised rather than bounded.
//
// The workload mirrors the paper's threat model: untrusted best-effort
// tasks issue the kernel's longest-running operations (endpoint
// deletion with large queues, badge revocation, large-object creation,
// address-space teardown) while a periodic timer interrupt stands in
// for a hard real-time task's release.
//
// With -soak, kzm-sim instead becomes the latency observatory: a
// seeded randomized workload (mixed IPC, endpoint churn, badged
// aborts, retyping, address-space teardown) soaks the kernel with
// timer interrupts at randomized phases, attributing every response
// sample to the operation in progress and checking each against the
// computed WCET bound live. -serve exposes the results over HTTP
// (/metrics in Prometheus text format, /snapshot.json as stable JSON);
// -bench-out writes the full before/after configuration matrix as a
// BENCH_soak.json artifact.
//
// With -probe, kzm-sim becomes the adversarial worst-case prober: a
// directed search primes caches, pipeline and replacement state
// against each entry point's worst-case footprint and evolves
// workload genomes (op kind, IRQ raise phase, queue depths, badge
// mix, retype size, cap-decode depth) to maximize observed latency,
// then reports per-entry observed/bound tightness ratios across the
// preemption × pinning matrix. -tightness-out writes the matrix as a
// BENCH_tightness.json artifact.
//
// With -sweep, kzm-sim walks the konfig configuration lattice: every
// backend's feasible sub-lattice of paper features (scheduler
// generation, preemption sites, way pinning, clearing granularity, L2
// and branch-predictor enables) is analysed through the shared
// content-addressed pass cache and soaked deterministically, and the
// per-entry-point WCET-vs-throughput Pareto frontiers are written as a
// byte-stable BENCH_pareto.json artifact. The document is identical
// across runs and -sweep-workers counts for a fixed seed.
//
// With -bench-sim, kzm-sim benchmarks the simulator itself: the same
// warm interrupt-path replay workload timed on the naive and the
// memoized engine across the four-image matrix, reporting replays/sec,
// simulated cycles/sec, allocations per replay and memo hit rates.
// The engines are differentially proven identical; a cycle
// disagreement fails the benchmark. -bench-sim-out writes the result
// as a BENCH_sim.json artifact.
//
// Usage:
//
//	kzm-sim [-variant modern|original] [-waiters N] [-period CYCLES]
//	        [-trace out.json] [-verbose]
//	kzm-sim -soak <ops|duration> [-seed N] [-pinned] [-soak-workers N]
//	        [-serve :9090] [-bench-out BENCH_soak.json]
//	kzm-sim -probe [-probe-budget N] [-seed N]
//	        [-tightness-out BENCH_tightness.json]
//	kzm-sim -bench-sim [-bench-sim-runs N] [-seed N]
//	        [-bench-sim-out BENCH_sim.json]
//	kzm-sim -sweep [-sweep-workers N] [-sweep-ops N] [-seed N]
//	        [-sweep-out BENCH_pareto.json]
//	kzm-sim -fleet-coordinator ADDR -soak <ops> [-fleet-workers N]
//	        [-fleet-chaos-kill N] [-fleet-verify] [-fleet-state F]
//	        [-serve :9090]
//	kzm-sim -fleet-worker ADDR
//	kzm-sim -fleet-bench -soak <ops> [-fleet-workers N]
//	        [-fleet-chaos-kill N] [-fleet-out BENCH_fleet.json]
//
// With -fleet-coordinator, kzm-sim becomes the fleet observatory: the
// soak campaign is sharded across worker processes (spawned locally
// and/or attached over TCP with -fleet-worker), each streaming
// histogram deltas and flight captures back over a length-prefixed
// wire protocol. The coordinator merges them live — byte-identically
// to a single-process soak at the same seed, even across worker kills
// — and serves /metrics, /snapshot.json, /fleet.json and /debug/pprof
// on -serve. SIGTERM drains workers gracefully, flushing final
// batches before the terminal snapshot prints.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"verikern"
	"verikern/internal/arch"
	"verikern/internal/chaos"
	"verikern/internal/fleet"
	"verikern/internal/kernel"
	"verikern/internal/measure"
	"verikern/internal/obs"
	"verikern/internal/soak"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kzm-sim: ")
	variantName := flag.String("variant", "modern", "kernel variant: modern or original")
	archName := flag.String("arch", "arm1136", "hardware backend: one of "+strings.Join(verikern.Architectures(), ", "))
	waiters := flag.Int("waiters", 256, "threads queued on the victim endpoint")
	period := flag.Uint64("period", 40_000, "timer interrupt period in cycles")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of kernel events")
	verbose := flag.Bool("verbose", false, "print per-phase detail")
	soakSpec := flag.String("soak", "", "run the latency observatory for an op count (e.g. 10000) or wall duration (e.g. 2s)")
	seed := flag.Uint64("seed", 42, "soak workload seed")
	pinned := flag.Bool("pinned", false, "check soak samples against the L1 way-pinned WCET bound")
	soakWorkers := flag.Int("soak-workers", 2, "parallel kernel instances per soak")
	serveAddr := flag.String("serve", "", "serve /metrics and /snapshot.json on this address after the soak")
	benchOut := flag.String("bench-out", "", "write the soak matrix as a BENCH_soak.json artifact to this file")
	probeMode := flag.Bool("probe", false, "run the adversarial worst-case probe over the preemption × pinning matrix")
	probeBudget := flag.Int("probe-budget", 160, "per-configuration probe evaluation budget")
	tightnessOut := flag.String("tightness-out", "BENCH_tightness.json", "write the probe matrix as a BENCH_tightness.json artifact to this file (with -probe; empty disables)")
	benchSim := flag.Bool("bench-sim", false, "benchmark the naive vs memoized simulator engine over the image matrix")
	benchSimRuns := flag.Int("bench-sim-runs", verikern.DefaultSimBenchRuns, "timed warm replays per engine per configuration")
	benchSimOut := flag.String("bench-sim-out", "BENCH_sim.json", "write the engine benchmark as a BENCH_sim.json artifact to this file (with -bench-sim; empty disables)")
	fleetCoord := flag.String("fleet-coordinator", "", "run a fleet coordinator listening for workers on this address (op budget from -soak)")
	fleetWorkerAddr := flag.String("fleet-worker", "", "run one fleet worker dialing a coordinator at this address")
	fleetWorkers := flag.Int("fleet-workers", 3, "worker processes the coordinator spawns locally (0 = attach externally)")
	fleetChaosKill := flag.Int("fleet-chaos-kill", 0, "kill and respawn this many workers mid-campaign (restart-path smoke)")
	fleetVerify := flag.Bool("fleet-verify", false, "after the campaign, verify the merged snapshot byte-matches a single-process soak")
	fleetState := flag.String("fleet-state", "", "persist coordinator checkpoints to this file (resume on restart)")
	fleetBench := flag.Bool("fleet-bench", false, "run the fleet benchmark across all architecture backends")
	fleetOut := flag.String("fleet-out", "BENCH_fleet.json", "write the fleet benchmark as a BENCH_fleet.json artifact to this file (with -fleet-bench; empty disables)")
	fleetChaos := flag.Uint64("fleet-chaos", 0, "inject deterministic transport faults into every worker connection, seeded by this value (coordinator mode; 0 disables)")
	chaosBench := flag.Bool("chaos-bench", false, "run the fault-injected fleet benchmark across all architecture backends (chaos seed from -fleet-chaos, default 1)")
	chaosOut := flag.String("chaos-out", "BENCH_chaos.json", "write the chaos benchmark as a BENCH_chaos.json artifact to this file (with -chaos-bench; empty disables)")
	sweepMode := flag.Bool("sweep", false, "sweep the konfig lattice on every backend and emit WCET-vs-throughput Pareto frontiers")
	sweepWorkers := flag.Int("sweep-workers", 4, "parallel analyses/soaks during -sweep (result is worker-count independent)")
	sweepOps := flag.Uint64("sweep-ops", 256, "soak operations per swept lattice point")
	sweepOut := flag.String("sweep-out", "BENCH_pareto.json", "write the sweep as a BENCH_pareto.json artifact to this file (with -sweep; empty disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	backend, err := arch.Lookup(*archName)
	if err != nil {
		log.Fatal(err)
	}

	if *sweepMode {
		runSweep(ctx, *seed, *sweepOps, *sweepWorkers, *sweepOut)
		return
	}

	if *benchSim {
		runBenchSim(ctx, *seed, *benchSimRuns, *benchSimOut, backend.ID)
		return
	}

	if *probeMode {
		runProbe(ctx, *seed, *probeBudget, *tightnessOut, backend.ID)
		return
	}

	if *fleetWorkerAddr != "" {
		runFleetWorker(ctx, *fleetWorkerAddr)
		return
	}

	if *fleetBench {
		ops, wall, err := parseSoakSpec(*soakSpec)
		if err != nil || wall > 0 {
			log.Fatalf("-fleet-bench needs an op budget via -soak (got %q)", *soakSpec)
		}
		runFleetBench(ctx, *seed, ops, *fleetWorkers, *fleetChaosKill, *fleetOut)
		return
	}

	if *chaosBench {
		ops, wall, err := parseSoakSpec(*soakSpec)
		if err != nil || wall > 0 {
			log.Fatalf("-chaos-bench needs an op budget via -soak (got %q)", *soakSpec)
		}
		chaosSeed := *fleetChaos
		if chaosSeed == 0 {
			chaosSeed = 1
		}
		runChaosBench(ctx, *seed, ops, chaosSeed, *fleetWorkers, *chaosOut)
		return
	}

	if *fleetCoord != "" {
		runFleetCoordinator(ctx, fleetRunConfig{
			addr:       *fleetCoord,
			variant:    *variantName,
			arch:       backend.ID,
			seed:       *seed,
			soakSpec:   *soakSpec,
			pinned:     *pinned,
			workers:    *fleetWorkers,
			serveAddr:  *serveAddr,
			statePath:  *fleetState,
			chaosKills: *fleetChaosKill,
			chaosSeed:  *fleetChaos,
			verify:     *fleetVerify,
		})
		return
	}

	if *soakSpec != "" || *benchOut != "" {
		runSoak(ctx, *soakSpec, *variantName, *seed, *pinned, *soakWorkers, *serveAddr, *benchOut, backend.ID)
		return
	}

	variant := verikern.Modern
	if *variantName == "original" {
		variant = verikern.Original
	}
	sys, err := verikern.BootVariant(variant)
	if err != nil {
		log.Fatal(err)
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(1 << 16)
		sys.SetTracer(tracer)
	}

	adversary, err := sys.CreateThread("adversary", 100)
	if err != nil {
		log.Fatal(err)
	}
	sys.StartThread(adversary)

	phase := func(name string, fn func() error) {
		if err := ctx.Err(); err != nil {
			log.Fatalf("interrupted before %s: %v", name, err)
		}
		start := len(sys.Latencies())
		sys.SetTimer(sys.Now() + *period)
		if err := fn(); err != nil && *verbose {
			log.Printf("%s: %v", name, err)
		}
		// A scheduling pass between phases, standing in for the
		// real-time task's release point.
		sys.Yield()
		if *verbose {
			n := len(sys.Latencies()) - start
			worst := uint64(0)
			for _, l := range sys.Latencies()[start:] {
				if l > worst {
					worst = l
				}
			}
			fmt.Printf("  %-28s IRQs=%d worst latency=%d cycles (%.1f µs)\n",
				name, n, worst, backend.CyclesToMicros(worst))
		}
	}

	// Phase 1: endpoint deletion with a long queue.
	eps, err := sys.CreateObjects(adversary, verikern.TypeEndpoint, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *waiters; i++ {
		w, err := sys.CreateThread("w", 50)
		if err != nil {
			log.Fatal(err)
		}
		sys.StartThread(w)
		if err := sys.Send(w, eps[0], 1, nil, false); err != nil {
			log.Fatal(err)
		}
	}
	phase("endpoint deletion", func() error { return sys.DeleteCap(adversary, eps[0]) })

	// Phase 2: badge revocation over a populated queue.
	eps2, err := sys.CreateObjects(adversary, verikern.TypeEndpoint, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	badged, err := sys.MintBadgedCap(adversary, eps2[0], 7)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *waiters; i++ {
		w, _ := sys.CreateThread("b", 50)
		sys.StartThread(w)
		sys.Send(w, badged, 1, nil, false)
	}
	phase("badge revocation", func() error { return sys.RevokeBadge(adversary, eps2[0], 7) })

	// Phase 3: large-object creation (1 MiB frame: a long clear).
	phase("1 MiB frame creation", func() error {
		_, err := sys.CreateObjects(adversary, verikern.TypeFrame, 20, 1)
		return err
	})

	// Phase 4: address-space construction and teardown.
	pds, err := sys.CreateObjects(adversary, verikern.TypePageDirectory, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AssignVSpace(adversary, pds[0]); err != nil {
		log.Fatal(err)
	}
	pts, _ := sys.CreateObjects(adversary, verikern.TypePageTable, 0, 1)
	sys.MapPageTable(adversary, pts[0], 64<<20)
	frames, _ := sys.CreateObjects(adversary, verikern.TypeFrame, 12, 32)
	for i, f := range frames {
		sys.MapFrame(adversary, f, uint32(64<<20)+uint32(i)<<12)
	}
	phase("address-space teardown", func() error { return sys.DeleteVSpace(adversary, pds[0]) })

	// Report.
	stats := sys.Stats()
	fmt.Printf("\nkernel:        %s\n", variant)
	fmt.Printf("cycles run:    %d (%.2f ms simulated)\n", sys.Now(), backend.CyclesToMicros(sys.Now())/1000)
	fmt.Printf("syscalls:      %d (%d restarts, %d preemption points hit)\n",
		stats.Syscalls, stats.Restarts, stats.Preemptions)
	fmt.Printf("IRQs serviced: %d\n", stats.IRQsServiced)
	fmt.Printf("latency:       %s\n", measure.Summarize(sys.Latencies()))
	if err := sys.InvariantFailure(); err != nil {
		log.Fatalf("INVARIANT VIOLATION: %v", err)
	}
	fmt.Println("invariants:    all checks passed at every preemption point and kernel exit")

	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		// Timestamps are cycles on the backend's clock; scale them so
		// the viewer's time axis reads in real microseconds.
		if err := tracer.WriteChromeTrace(f, float64(backend.ClockHz)/1e6); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace:         %d events (%d dropped) written to %s\n",
			tracer.Emitted()-tracer.Dropped(), tracer.Dropped(), *tracePath)
		fmt.Print(tracer.Summary())
	}
}

// runSoak is the latency-observatory mode. spec is an op count or a
// wall duration; empty means "default ops" (used when only -bench-out
// is given).
func runSoak(ctx context.Context, spec, variantName string, seed uint64, pinned bool, workers int, serveAddr, benchOut, archID string) {
	ops, wall, err := parseSoakSpec(spec)
	if err != nil {
		log.Fatal(err)
	}

	kcfg := kernel.Modern()
	label := "benno+preempt"
	if variantName == "original" {
		kcfg = kernel.Original()
		label = "lazy"
	}
	kcfg.CheckInvariants = false
	if pinned {
		label += "+pinned"
	}
	cfg := soak.Config{
		Label:   label,
		Arch:    archID,
		Seed:    seed,
		Ops:     ops,
		Workers: workers,
		Kernel:  kcfg,
		Pinned:  pinned,
	}

	var rep *soak.Report
	if wall > 0 {
		rep, err = soak.RunFor(ctx, cfg, wall)
	} else {
		rep, err = soak.Run(ctx, cfg)
	}
	if err != nil && err != context.Canceled {
		log.Fatal(err)
	}
	fmt.Print(rep.String())
	for i, c := range rep.Captures {
		fmt.Printf("flight capture %d (%s, worker %d): latency %d cycles during %s, %d trailing events\n",
			i, c.Reason, c.Worker, c.Sample.Latency, c.Sample.Source, len(c.Events))
	}

	if benchOut != "" {
		reps, err := verikern.SoakReportArch(ctx, seed, ops, archID)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(benchOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := verikern.WriteSoakBench(f, seed, ops, reps); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d-config soak matrix to %s\n", len(reps), benchOut)
	}

	if serveAddr != "" {
		serveSnapshot(ctx, serveAddr, rep)
	}
}

// runProbe is the adversarial-probe mode: the directed search over
// the full preemption × pinning matrix, a tightness table on stdout
// and optionally the BENCH_tightness.json artifact.
func runProbe(ctx context.Context, seed uint64, budget int, out, archID string) {
	reps, err := verikern.TightnessReportArch(ctx, seed, budget, archID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(verikern.FormatTightnessReport(reps))
	var violations uint64
	for _, r := range reps {
		violations += r.Violations
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := verikern.WriteTightnessBench(f, seed, budget, reps); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d-config tightness matrix to %s\n", len(reps), out)
	}
	if violations != 0 {
		log.Fatalf("SOUNDNESS VIOLATION: %d observations exceeded their computed bound", violations)
	}
	fmt.Println("soundness: every observed maximum within its computed bound")
}

// runBenchSim is the engine-benchmark mode: naive vs memoized replay
// throughput over the image matrix, a table on stdout and optionally
// the BENCH_sim.json artifact. The report itself fails if the engines
// ever disagree on simulated cycles.
func runBenchSim(ctx context.Context, seed uint64, runs int, out, archID string) {
	doc, err := verikern.SimReportArch(ctx, seed, runs, archID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(verikern.FormatSimBench(doc))
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := verikern.WriteSimBench(f, doc); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d-config engine benchmark to %s\n", len(doc.Configs), out)
	}
}

// runSweep is the configuration-lattice mode: walk every backend's
// feasible DefaultSpace sub-lattice through the shared analysis cache,
// soak each point deterministically, and emit the per-entry-point
// WCET-vs-throughput Pareto frontiers as the byte-stable
// BENCH_pareto.json artifact.
func runSweep(ctx context.Context, seed, ops uint64, workers int, out string) {
	start := time.Now()
	doc, err := verikern.ParetoSweep(ctx, nil, seed, ops, workers)
	if err != nil {
		log.Fatal(err)
	}
	for _, sw := range doc.Archs {
		fmt.Printf("sweep %s: %d feasible points\n", sw.Arch, len(sw.Points))
		for _, fr := range sw.Frontiers {
			fmt.Printf("  %-12s frontier: %d point(s)", fr.Entry, len(fr.Points))
			if n := len(fr.Points); n > 0 {
				fmt.Printf("  wcet %d..%d cycles", fr.Points[0].WCETCycles, fr.Points[n-1].WCETCycles)
			}
			fmt.Println()
		}
		var violations uint64
		for _, p := range sw.Points {
			violations += p.Violations
		}
		if violations != 0 {
			log.Fatalf("SOUNDNESS VIOLATION: %d soak samples exceeded their analysed bound on %s", violations, sw.Arch)
		}
	}
	cs := verikern.AnalysisCacheStats()
	fmt.Printf("sweep done in %.1fs (pass cache: %d hits / %d misses)\n",
		time.Since(start).Seconds(), cs.Hits, cs.Misses)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := verikern.WriteParetoBench(f, doc); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d-backend Pareto sweep to %s\n", len(doc.Archs), out)
	}
}

// parseSoakSpec interprets -soak's argument: a bare integer is an op
// budget, a time.Duration string a wall budget, empty the default op
// budget.
func parseSoakSpec(spec string) (ops uint64, wall time.Duration, err error) {
	const defaultOps = 10_000
	if spec == "" {
		return defaultOps, 0, nil
	}
	if n, nerr := strconv.ParseUint(spec, 10, 64); nerr == nil {
		return n, 0, nil
	}
	d, derr := time.ParseDuration(spec)
	if derr != nil || d <= 0 {
		return 0, 0, fmt.Errorf("-soak %q: want an op count or a positive duration", spec)
	}
	return defaultOps, d, nil
}

// serveSnapshot exposes the soak's merged snapshot over HTTP until the
// process is interrupted: /metrics (with build_info), /snapshot.json
// and the pprof endpoints, on the same mux the fleet coordinator uses.
func serveSnapshot(ctx context.Context, addr string, rep *soak.Report) {
	mux := fleet.NewMux(func() *obs.Snapshot { return rep.Snapshot }, nil)
	srv := &http.Server{Addr: addr, Handler: mux}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	fmt.Printf("serving /metrics, /snapshot.json and /debug/pprof on %s (interrupt to stop)\n", addr)
	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}
}

// fleetRunConfig bundles the coordinator-mode flag values.
type fleetRunConfig struct {
	addr       string
	variant    string
	arch       string
	seed       uint64
	soakSpec   string
	pinned     bool
	workers    int
	serveAddr  string
	statePath  string
	chaosKills int
	chaosSeed  uint64
	verify     bool
}

// fleetSpec translates the CLI variant flags into the fleet workload
// spec, mirroring runSoak's config construction.
func fleetSpec(rc fleetRunConfig, ops uint64) fleet.Spec {
	kcfg := kernel.Modern()
	label := "benno+preempt"
	if rc.variant == "original" {
		kcfg = kernel.Original()
		label = "lazy"
	}
	kcfg.CheckInvariants = false
	if rc.pinned {
		label += "+pinned"
	}
	return fleet.Spec{
		Label:   label,
		Arch:    rc.arch,
		Seed:    rc.seed,
		Ops:     ops,
		Workers: rc.workers,
		Kernel:  kcfg,
		Pinned:  rc.pinned,
	}
}

// runFleetCoordinator is the fleet-observatory mode: shard the soak
// across worker processes, merge their streamed deltas live, serve the
// aggregate, survive worker kills, drain gracefully on SIGTERM, and
// optionally verify equal-seed equivalence at completion.
func runFleetCoordinator(ctx context.Context, rc fleetRunConfig) {
	ops, wall, err := parseSoakSpec(rc.soakSpec)
	if err != nil {
		log.Fatal(err)
	}
	if wall > 0 {
		log.Fatal("-fleet-coordinator needs an op budget via -soak, not a duration")
	}
	if rc.workers < 1 {
		log.Fatal("-fleet-workers must be at least 1")
	}
	spec := fleetSpec(rc, ops)
	fcfg := fleet.Config{Spec: spec, StatePath: rc.statePath, Logf: log.Printf}
	var eng *chaos.Engine
	if rc.chaosSeed != 0 {
		// Chaos mode: wrap every accepted connection in the seeded
		// fault injector and tighten the recovery timeouts so lease
		// reaping and frame deadlines actually fire within the run.
		// The aggressive profile lands faults even on short smoke
		// campaigns; recovery keeps the merge byte-identical anyway.
		eng = chaos.New(chaos.Aggressive(rc.chaosSeed))
		fcfg.WrapConn = eng.Wrap
		fcfg.LeaseTimeout = 2 * time.Second
		fcfg.FrameTimeout = time.Second
		fmt.Printf("chaos engine armed: seed %d (deterministic fault schedule)\n", rc.chaosSeed)
	}
	c, err := fleet.New(ctx, fcfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", rc.addr)
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = c.Serve(ln) }()
	fmt.Printf("fleet coordinator on %s: %d shards, %d ops, seed %d\n",
		ln.Addr(), spec.Workers, spec.Ops, spec.Seed)

	if rc.serveAddr != "" {
		srv := &http.Server{Addr: rc.serveAddr, Handler: fleet.NewMux(c.Snapshot, c.Status)}
		go func() {
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				log.Printf("serve: %v", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("serving /metrics, /snapshot.json, /fleet.json and /debug/pprof on %s\n", rc.serveAddr)
	}

	// The spawner deliberately does NOT inherit the signal context: on
	// SIGTERM the workers must survive long enough to honour the
	// coordinator's drain (flushing their final batches); only after
	// the drain completes are the processes torn down.
	spawnCtx, stopSpawn := context.WithCancel(context.Background())
	defer stopSpawn()
	var procs *fleet.ProcSet
	if rc.workers > 0 {
		bin, err := os.Executable()
		if err != nil {
			log.Fatal(err)
		}
		procs = fleet.SpawnLocalWorkers(spawnCtx, bin, rc.workers,
			[]string{"-fleet-worker", ln.Addr().String()}, log.Printf)
	}
	if rc.chaosKills > 0 && procs != nil {
		go func() {
			for c.MergedOps() <= spec.Ops/3 {
				select {
				case <-ctx.Done():
					return
				case <-c.Done():
					return
				case <-time.After(5 * time.Millisecond):
				}
			}
			for i := 0; i < rc.chaosKills; i++ {
				if !procs.KillOne() {
					time.Sleep(50 * time.Millisecond)
					continue
				}
				time.Sleep(100 * time.Millisecond)
			}
		}()
	}

	interrupted := false
	select {
	case <-c.Done():
	case <-ctx.Done():
		interrupted = true
		fmt.Println("signal received: draining fleet")
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := c.Drain(drainCtx); err != nil {
			log.Printf("drain: %v", err)
		}
		cancel()
	}
	stopSpawn()
	ln.Close()
	if procs != nil {
		procs.Wait()
	}

	st := c.Status()
	snap := c.Snapshot()
	fmt.Printf("fleet merged %d/%d ops, %d samples, %d batches, %d dropped, %d restarts\n",
		st.MergedOps, st.TotalOps, st.Samples, st.Batches, st.Dropped, st.Restarts)
	if eng != nil {
		fmt.Printf("chaos: %d faults injected, %d corrupt frames detected, %d quarantined, %d retries, %d lease releases, %d recoveries (p99 %.1f ms)\n",
			eng.Injected(), st.FramesCorrupt, st.Quarantined, st.Retries, st.Releases, st.Recoveries, st.RecoveryP99MS)
	}
	var buf bytes.Buffer
	_ = snap.WriteJSON(&buf)
	fmt.Printf("terminal snapshot: irq count %d max %d, bound %d (%d violations)\n",
		snap.IRQ.Count, snap.IRQ.Max, snap.Bound.Cycles, snap.Bound.Violations)

	if rc.verify {
		if interrupted || !c.Completed() {
			log.Println("fleet-verify skipped: campaign incomplete")
		} else {
			fleetDigest, err := fleet.EquivalenceDigest(snap)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := soak.Run(context.Background(), spec.SoakConfig())
			if err != nil {
				log.Fatal(err)
			}
			singleDigest, err := fleet.EquivalenceDigest(rep.Snapshot)
			if err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(fleetDigest, singleDigest) {
				log.Fatalf("EQUIVALENCE VIOLATION: fleet merge diverges from single-process soak\n--- fleet ---\n%s--- single ---\n%s", fleetDigest, singleDigest)
			}
			fmt.Println("equal-seed equivalence: fleet merge byte-identical to single-process soak")
		}
	}
	c.Stop()
}

// runFleetWorker attaches one worker to the coordinator and keeps it
// attached across connection failures: transport errors (including
// chaos-injected resets and corrupt frames) redial with jittered
// exponential backoff, completed shards redial immediately for the
// next lease, and a drain ("no shard available") exits cleanly.
func runFleetWorker(ctx context.Context, addr string) {
	dial := func(ctx context.Context) (io.ReadWriteCloser, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	err := fleet.RunWorkerLoop(ctx, dial, fleet.WorkerOptions{
		Logf:         log.Printf,
		FrameTimeout: 10 * time.Second,
	})
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}

// runFleetBench runs one chaos-injected fleet campaign per
// architecture backend, verifies equal-seed equivalence for each, and
// writes the BENCH_fleet.json artifact. Any inequivalent campaign is
// fatal — the artifact's Equivalent flags are the CI gate.
func runFleetBench(ctx context.Context, seed, ops uint64, workers, chaosKills int, out string) {
	doc, err := verikern.FleetReport(ctx, seed, ops, workers, chaosKills, verikern.Architectures())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(verikern.FormatFleetReport(doc))
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := verikern.WriteFleetBench(f, doc); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d-arch fleet benchmark to %s\n", len(doc.Configs), out)
	}
	for _, r := range doc.Configs {
		if !r.Equivalent {
			log.Fatalf("EQUIVALENCE VIOLATION: %s fleet merge diverges from single-process soak", r.Arch)
		}
	}
	fmt.Println("equal-seed equivalence: every fleet merge byte-identical to its single-process soak")
}

// runChaosBench runs one fault-injected fleet campaign per
// architecture backend, verifies that each merged snapshot is
// byte-identical to a fault-free single-process soak, and writes the
// BENCH_chaos.json artifact. Any inequivalent campaign is fatal — the
// artifact's Equivalent flags are the CI gate.
func runChaosBench(ctx context.Context, seed, ops, chaosSeed uint64, workers int, out string) {
	doc, err := verikern.ChaosReport(ctx, seed, ops, chaosSeed, workers, verikern.Architectures())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(verikern.FormatChaosReport(doc))
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := verikern.WriteChaosBench(f, doc); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d-arch chaos benchmark to %s\n", len(doc.Configs), out)
	}
	for _, r := range doc.Configs {
		if !r.Equivalent {
			log.Fatalf("EQUIVALENCE VIOLATION: %s chaos campaign diverges from fault-free single-process soak", r.Arch)
		}
	}
	fmt.Println("chaos recovery proof: every fault-injected merge byte-identical to its fault-free soak")
}
