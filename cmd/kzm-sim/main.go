// Command kzm-sim boots the functional kernel model and runs an
// adversarial mixed-criticality workload against it, reporting the
// interrupt-response latencies a real-time subsystem would see. It is
// the "live" counterpart of the static analysis in cmd/wcet: the same
// kernel designs, exercised rather than bounded.
//
// The workload mirrors the paper's threat model: untrusted best-effort
// tasks issue the kernel's longest-running operations (endpoint
// deletion with large queues, badge revocation, large-object creation,
// address-space teardown) while a periodic timer interrupt stands in
// for a hard real-time task's release.
//
// Usage:
//
//	kzm-sim [-variant modern|original] [-waiters N] [-period CYCLES]
//	        [-trace out.json] [-verbose]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"verikern"
	"verikern/internal/arch"
	"verikern/internal/measure"
	"verikern/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kzm-sim: ")
	variantName := flag.String("variant", "modern", "kernel variant: modern or original")
	waiters := flag.Int("waiters", 256, "threads queued on the victim endpoint")
	period := flag.Uint64("period", 40_000, "timer interrupt period in cycles")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of kernel events")
	verbose := flag.Bool("verbose", false, "print per-phase detail")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	variant := verikern.Modern
	if *variantName == "original" {
		variant = verikern.Original
	}
	sys, err := verikern.BootVariant(variant)
	if err != nil {
		log.Fatal(err)
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(1 << 16)
		sys.SetTracer(tracer)
	}

	adversary, err := sys.CreateThread("adversary", 100)
	if err != nil {
		log.Fatal(err)
	}
	sys.StartThread(adversary)

	phase := func(name string, fn func() error) {
		if err := ctx.Err(); err != nil {
			log.Fatalf("interrupted before %s: %v", name, err)
		}
		start := len(sys.Latencies())
		sys.SetTimer(sys.Now() + *period)
		if err := fn(); err != nil && *verbose {
			log.Printf("%s: %v", name, err)
		}
		// A scheduling pass between phases, standing in for the
		// real-time task's release point.
		sys.Yield()
		if *verbose {
			n := len(sys.Latencies()) - start
			worst := uint64(0)
			for _, l := range sys.Latencies()[start:] {
				if l > worst {
					worst = l
				}
			}
			fmt.Printf("  %-28s IRQs=%d worst latency=%d cycles (%.1f µs)\n",
				name, n, worst, verikern.CyclesToMicros(worst))
		}
	}

	// Phase 1: endpoint deletion with a long queue.
	eps, err := sys.CreateObjects(adversary, verikern.TypeEndpoint, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *waiters; i++ {
		w, err := sys.CreateThread("w", 50)
		if err != nil {
			log.Fatal(err)
		}
		sys.StartThread(w)
		if err := sys.Send(w, eps[0], 1, nil, false); err != nil {
			log.Fatal(err)
		}
	}
	phase("endpoint deletion", func() error { return sys.DeleteCap(adversary, eps[0]) })

	// Phase 2: badge revocation over a populated queue.
	eps2, err := sys.CreateObjects(adversary, verikern.TypeEndpoint, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	badged, err := sys.MintBadgedCap(adversary, eps2[0], 7)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *waiters; i++ {
		w, _ := sys.CreateThread("b", 50)
		sys.StartThread(w)
		sys.Send(w, badged, 1, nil, false)
	}
	phase("badge revocation", func() error { return sys.RevokeBadge(adversary, eps2[0], 7) })

	// Phase 3: large-object creation (1 MiB frame: a long clear).
	phase("1 MiB frame creation", func() error {
		_, err := sys.CreateObjects(adversary, verikern.TypeFrame, 20, 1)
		return err
	})

	// Phase 4: address-space construction and teardown.
	pds, err := sys.CreateObjects(adversary, verikern.TypePageDirectory, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AssignVSpace(adversary, pds[0]); err != nil {
		log.Fatal(err)
	}
	pts, _ := sys.CreateObjects(adversary, verikern.TypePageTable, 0, 1)
	sys.MapPageTable(adversary, pts[0], 64<<20)
	frames, _ := sys.CreateObjects(adversary, verikern.TypeFrame, 12, 32)
	for i, f := range frames {
		sys.MapFrame(adversary, f, uint32(64<<20)+uint32(i)<<12)
	}
	phase("address-space teardown", func() error { return sys.DeleteVSpace(adversary, pds[0]) })

	// Report.
	stats := sys.Stats()
	fmt.Printf("\nkernel:        %s\n", variant)
	fmt.Printf("cycles run:    %d (%.2f ms simulated)\n", sys.Now(), verikern.CyclesToMicros(sys.Now())/1000)
	fmt.Printf("syscalls:      %d (%d restarts, %d preemption points hit)\n",
		stats.Syscalls, stats.Restarts, stats.Preemptions)
	fmt.Printf("IRQs serviced: %d\n", stats.IRQsServiced)
	fmt.Printf("latency:       %s\n", measure.Summarize(sys.Latencies()))
	if err := sys.InvariantFailure(); err != nil {
		log.Fatalf("INVARIANT VIOLATION: %v", err)
	}
	fmt.Println("invariants:    all checks passed at every preemption point and kernel exit")

	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		// Timestamps are cycles on the 532 MHz clock; scale them so
		// the viewer's time axis reads in real microseconds.
		if err := tracer.WriteChromeTrace(f, arch.ClockHz/1e6); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace:         %d events (%d dropped) written to %s\n",
			tracer.Emitted()-tracer.Dropped(), tracer.Dropped(), *tracePath)
		fmt.Print(tracer.Summary())
	}
}
