// Command paper regenerates the evaluation artefacts of "Improving
// Interrupt Response Time in a Verifiable Protected Microkernel"
// (EuroSys 2012): Tables 1 and 2, Figures 8 and 9, the §6 headline
// interrupt-latency bound, the §6.1 fastpath figure and the §6.3
// analysis-time breakdown.
//
// Usage:
//
//	paper [-runs N] [-table 1|2] [-figure 8|9] [-headline]
//	      [-arch arm1136|cva6rt] [-ablations] [-json] [-trace out.json]
//	      [-lattice]
//
// -lattice prints the legacy evaluation matrices (soak, probe, Figure
// 9's hardware axis) as konfig configuration-lattice points: each
// historical name next to the lattice hash that identifies it in soak
// snapshots, fleet batches and BENCH_pareto.json rows.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"verikern"
	"verikern/internal/arch"
	"verikern/internal/konfig"
	"verikern/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper: ")
	runs := flag.Int("runs", verikern.DefaultRuns, "measurement runs per observed value")
	archName := flag.String("arch", "arm1136", "hardware backend: one of "+strings.Join(verikern.Architectures(), ", ")+" (non-ARM backends print the cross-architecture bounds table)")
	table := flag.Int("table", 0, "print only this table (1 or 2)")
	figure := flag.Int("figure", 0, "print only this figure (8 or 9)")
	headline := flag.Bool("headline", false, "print only the headline latency")
	asJSON := flag.Bool("json", false, "emit all results as JSON instead of formatted tables")
	ablations := flag.Bool("ablations", false, "print the design-space ablations (L2 locking, TCM, clearing granularity)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of analysis-pipeline stages")
	lattice := flag.Bool("lattice", false, "print the legacy evaluation matrices as konfig lattice points (name, hash, assignments)")
	flag.Parse()

	// Interrupting the run (SIGINT/SIGTERM) cancels the analysis
	// pipeline between passes instead of killing it mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var metrics *obs.Metrics
	if *tracePath != "" {
		metrics = obs.NewMetrics()
		verikern.ObservePipeline(metrics)
		defer writePipelineTrace(metrics, *tracePath)
	}

	backend, err := arch.Lookup(*archName)
	if err != nil {
		log.Fatal(err)
	}
	if *lattice {
		printLattice(backend.ID)
		return
	}
	if backend.ID != arch.ARM1136ID {
		// The paper's tables and figures are ARM1136/KZM artifacts
		// (L2 and branch-predictor sweeps the other backends lack);
		// for any other backend, print the architecture-portable
		// bounds table instead.
		rows, err := verikern.ArchBounds(ctx, backend.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(verikern.FormatArchBounds(rows))
		return
	}

	if *asJSON {
		emitJSON(ctx, *runs)
		return
	}
	if *ablations {
		printAblations(ctx)
		return
	}

	all := *table == 0 && *figure == 0 && !*headline

	if all || *table == 1 {
		rows, err := verikern.Table1(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(verikern.FormatTable1(rows))
	}
	if all || *table == 2 {
		rows, err := verikern.Table2(ctx, *runs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(verikern.FormatTable2(rows))
	}
	if all || *figure == 8 {
		bars, err := verikern.Fig8(ctx, *runs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(verikern.FormatFig8(bars))
	}
	if all || *figure == 9 {
		bars, err := verikern.Fig9(ctx, *runs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(verikern.FormatFig9(bars))
	}
	if all || *headline {
		off, err := verikern.ComputeHeadline(ctx, false)
		if err != nil {
			log.Fatal(err)
		}
		on, err := verikern.ComputeHeadline(ctx, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Headline worst-case interrupt latency (syscall + interrupt bounds):\n")
		fmt.Printf("  L2 disabled: %7d cycles  %7.1f µs   (paper: 189117 cycles, 356 µs)\n",
			off.TotalCycles, off.TotalMicros)
		fmt.Printf("  L2 enabled:  %7d cycles  %7.1f µs   (paper: 481 µs)\n\n",
			on.TotalCycles, on.TotalMicros)
	}
	if all {
		fp, err := verikern.FastpathCycles()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("IPC fastpath syscall round: %d kernel cycles (fastpath body 230; paper: 200-250 plus entry/exit)\n\n", fp)

		times, err := verikern.AnalysisTimes(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Analysis computation time per entry point (§6.3):")
		for _, e := range verikern.EntryPoints() {
			fmt.Printf("  %-24s %v\n", e.Label(), times[e])
		}
	}
}

// writePipelineTrace dumps the collected stage timings and counters as
// a Chrome trace plus a plain-text summary on stdout, followed by the
// artifact cache's effectiveness counters.
func writePipelineTrace(m *obs.Metrics, path string) {
	snap := m.Stats()
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := snap.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAnalysis pipeline stats (trace written to %s):\n%s", path, snap)
	cs := verikern.AnalysisCacheStats()
	fmt.Printf("\nArtifact cache: %d hits, %d misses, %d entries in memory\n",
		cs.Hits, cs.Misses, cs.Entries)
}

// printAblations renders the design-space experiments beyond the
// paper's tables: the §8 L2-locking idea, the §5.1 TCM alternative, and
// the §3.5 clearing-granularity sweep.
func printAblations(ctx context.Context) {
	l2, err := verikern.AblationL2Lock(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("L2 kernel locking (§8 future work): computed bounds, L2 enabled")
	fmt.Printf("%-24s %12s %12s %10s\n", "Event handler", "plain", "locked", "reduction")
	for _, r := range l2 {
		fmt.Printf("%-24s %12d %12d %9.0f%%\n", r.Entry.Label(), r.PlainL2Cycles, r.LockedL2Cycles, r.ReductionPercent)
	}

	tcm, err := verikern.AblationTCM(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nInterrupt-path latency-hiding mechanisms (§4, §5.1): computed bounds")
	fmt.Printf("  baseline %d, way-locked %d, TCM %d cycles\n",
		tcm.BaselineCycles, tcm.PinnedCycles, tcm.TCMCycles)

	chunks, err := verikern.AblationClearChunk(ctx, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nObject-clearing preemption granularity (§3.5): worst latency under periodic IRQ")
	fmt.Printf("%-12s %16s %16s\n", "chunk", "worst latency", "workload cycles")
	for _, r := range chunks {
		fmt.Printf("%8d B %16d %16d\n", r.ChunkBytes, r.WorstLatency, r.TotalCycles)
	}
}

// emitJSON runs every experiment and writes one machine-readable
// document, for plotting pipelines.
func emitJSON(ctx context.Context, runs int) {
	type doc struct {
		Table1   []verikern.Table1Row         `json:"table1"`
		Table2   []verikern.Table2Row         `json:"table2"`
		Fig8     []verikern.Fig8Bar           `json:"fig8"`
		Fig9     []verikern.Fig9Bar           `json:"fig9"`
		Headline map[string]verikern.Headline `json:"headline"`
		L2Lock   []verikern.L2LockAblation    `json:"l2lock"`
	}
	var d doc
	var err error
	if d.Table1, err = verikern.Table1(ctx); err != nil {
		log.Fatal(err)
	}
	if d.Table2, err = verikern.Table2(ctx, runs); err != nil {
		log.Fatal(err)
	}
	if d.Fig8, err = verikern.Fig8(ctx, runs); err != nil {
		log.Fatal(err)
	}
	if d.Fig9, err = verikern.Fig9(ctx, runs); err != nil {
		log.Fatal(err)
	}
	off, err := verikern.ComputeHeadline(ctx, false)
	if err != nil {
		log.Fatal(err)
	}
	on, err := verikern.ComputeHeadline(ctx, true)
	if err != nil {
		log.Fatal(err)
	}
	d.Headline = map[string]verikern.Headline{"l2off": off, "l2on": on}
	if d.L2Lock, err = verikern.AblationL2Lock(ctx); err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		log.Fatal(err)
	}
}

// printLattice renders the legacy evaluation matrices as their konfig
// lattice points: every historical configuration name next to the
// lattice hash that now identifies it (in soak snapshots, fleet
// batches and BENCH_pareto.json rows) and its full key assignment.
func printLattice(archID string) {
	section := func(title string, pts []konfig.NamedPoint, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", title)
		for _, np := range pts {
			fmt.Printf("  %-24s %s  %s\n", np.Name, np.Point.Hash(), np.Point.Listing())
		}
		fmt.Println()
	}
	soakPts, err := konfig.LegacySoakMatrix(archID)
	section("soak matrix ("+archID+")", soakPts, err)
	probePts, err := konfig.LegacyProbeMatrix(archID)
	section("probe matrix ("+archID+")", probePts, err)
	if archID == arch.ARM1136ID {
		section("figure 9 hardware matrix (arm1136)", konfig.LegacyHardwareMatrix(), nil)
	}
}
