// Adversarial capability space demo (§6.1, Fig. 7): a 32-bit
// capability address can be laid out so that every bit requires a
// separate CNode lookup — 32 dependent memory accesses per decode, and
// the worst-case system call performs up to 11 decodes. This is the
// dominant term in the paper's worst-case IPC, and the reason its
// conclusions recommend denying adversaries the authority to construct
// their own capability spaces.
package main

import (
	"fmt"
	"log"

	"verikern"
)

// measure runs one send through a cap space of the given depth and
// returns its kernel-cycle cost.
func measure(levels int) (uint64, error) {
	sys, err := verikern.Boot(verikern.ModernKernel())
	if err != nil {
		return 0, err
	}
	adv, err := sys.CreateThread("adversary", 100)
	if err != nil {
		return 0, err
	}
	sys.StartThread(adv)
	addr, err := sys.BuildAdversarialCSpace(adv, levels)
	if err != nil {
		return 0, err
	}
	before := sys.Now()
	if err := sys.Send(adv, addr, 1, nil, false); err != nil {
		return 0, err
	}
	if err := sys.InvariantFailure(); err != nil {
		return 0, err
	}
	return sys.Now() - before, nil
}

func main() {
	log.SetFlags(0)
	fmt.Println("cap-space decode cost vs depth (functional kernel):")
	var base uint64
	for _, levels := range []int{1, 2, 4, 8, 16, 32} {
		c, err := measure(levels)
		if err != nil {
			log.Fatal(err)
		}
		if levels == 1 {
			base = c
		}
		fmt.Printf("  %2d levels: %6d cycles (+%d per extra level)\n",
			levels, c, int64(c-base)/int64(max(1, levels-1)))
	}

	// The static analyser sees the same effect: the syscall path's
	// bound is dominated by the 11 × 32-level decode worst case.
	im, err := verikern.BuildImage(verikern.Modern, false)
	if err != nil {
		log.Fatal(err)
	}
	bd, err := im.Analyze(verikern.Hardware{}, verikern.Syscall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic worst-case syscall bound: %d cycles (%.0f µs)\n", bd.Cycles, bd.Micros)
	fmt.Println("most seL4 systems use 1-2 level spaces; the paper notes practical")
	fmt.Println("systems should simply not let untrusted code build 32-level spaces.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
