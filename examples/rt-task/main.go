// Periodic real-time task demo: the paper's motivating system (§1) —
// a hard real-time task sharing the processor with untrusted
// components, its releases driven by a periodic timer interrupt
// delivered through an IRQ-handler notification object.
//
// The demo registers a handler thread for the timer IRQ, runs an
// adversarial best-effort workload (large object creation, endpoint
// churn, badge revocation), and reports the release latency
// distribution the RT task experiences — bounded on the modern kernel,
// workload-dependent on the original.
package main

import (
	"fmt"
	"log"
	"sort"

	"verikern"
)

const timerPeriod = 60_000 // cycles between RT releases (~113 µs)

func run(v verikern.Variant) ([]uint64, uint64, error) {
	sys, err := verikern.BootVariant(v)
	if err != nil {
		return nil, 0, err
	}

	// The RT task: highest priority, woken by the timer IRQ.
	rt, err := sys.CreateThread("rt-task", 255)
	if err != nil {
		return nil, 0, err
	}
	sys.StartThread(rt)
	irqEP, err := sys.CreateObjects(rt, verikern.TypeNotification, 0, 1)
	if err != nil {
		return nil, 0, err
	}
	if err := sys.RegisterIRQHandler(rt, irqEP[0]); err != nil {
		return nil, 0, err
	}
	if err := sys.WaitIRQ(rt, irqEP[0]); err != nil {
		return nil, 0, err
	}
	sys.SetPeriodicTimer(timerPeriod)

	// The adversary: low priority, hammering the kernel's longest
	// operations.
	adv, err := sys.CreateThread("adversary", 10)
	if err != nil {
		return nil, 0, err
	}
	sys.StartThread(adv)

	for round := 0; round < 4; round++ {
		// Large-object creation: long clears.
		if _, err := sys.CreateObjects(adv, verikern.TypeFrame, 18, 1); err != nil {
			return nil, 0, err
		}
		// Endpoint churn with deletion.
		eps, err := sys.CreateObjects(adv, verikern.TypeEndpoint, 0, 1)
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i < 64; i++ {
			w, err := sys.CreateThread("w", 5)
			if err != nil {
				return nil, 0, err
			}
			sys.StartThread(w)
			sys.Send(w, eps[0], 1, nil, false)
		}
		if err := sys.DeleteCap(adv, eps[0]); err != nil {
			return nil, 0, err
		}
		// The RT task runs at each release (it outranks the
		// adversary), does its work and waits for the next one.
		for rt.State.Runnable() {
			if err := sys.WaitIRQ(rt, irqEP[0]); err != nil {
				return nil, 0, err
			}
		}
	}
	if err := sys.InvariantFailure(); err != nil {
		return nil, 0, err
	}
	return sys.Latencies(), sys.IRQHandlerRuns(), nil
}

func main() {
	log.SetFlags(0)
	fmt.Printf("periodic RT task (period %d cycles = %.0f µs) vs adversarial workload\n\n",
		timerPeriod, verikern.CyclesToMicros(timerPeriod))
	for _, v := range []verikern.Variant{verikern.Original, verikern.Modern} {
		lats, wakes, err := run(v)
		if err != nil {
			log.Fatalf("%v: %v", v, err)
		}
		sorted := append([]uint64(nil), lats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if len(sorted) == 0 {
			log.Fatalf("%v: no releases recorded", v)
		}
		p50 := sorted[len(sorted)/2]
		max := sorted[len(sorted)-1]
		fmt.Printf("%-9s kernel: %3d releases, %d handler wakeups\n", v, len(sorted), wakes)
		fmt.Printf("          release latency: median %6d cycles (%6.1f µs), worst %8d cycles (%8.1f µs)\n\n",
			p50, verikern.CyclesToMicros(p50), max, verikern.CyclesToMicros(max))
	}
	fmt.Println("The modern kernel's preemption points keep every release within the")
	fmt.Println("analysed bound; the original kernel blows through whole periods while")
	fmt.Println("clearing objects with interrupts disabled.")
}
