// Badge revocation demo (§3.4): a server hands badged endpoint
// capabilities to clients, then revokes one badge while requests are
// in flight. The revocation must abort exactly the revoked badge's
// pending IPCs, leave everyone else queued, survive preemption
// mid-walk, and let the server re-issue the badge afterwards with full
// authenticity guarantees.
package main

import (
	"fmt"
	"log"

	"verikern"
)

func main() {
	log.SetFlags(0)
	sys, err := verikern.Boot(verikern.ModernKernel())
	if err != nil {
		log.Fatal(err)
	}

	server, err := sys.CreateThread("server", 200)
	if err != nil {
		log.Fatal(err)
	}
	sys.StartThread(server)

	eps, err := sys.CreateObjects(server, verikern.TypeEndpoint, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	ep := eps[0]

	// Mint one badged cap per tenant and let their clients queue
	// requests.
	const tenants = 3
	const clientsPerTenant = 8
	badged := make([]uint32, tenants)
	clients := make([][]*verikern.TCB, tenants)
	for b := 0; b < tenants; b++ {
		addr, err := sys.MintBadgedCap(server, ep, uint32(b+1))
		if err != nil {
			log.Fatal(err)
		}
		badged[b] = addr
		for c := 0; c < clientsPerTenant; c++ {
			t, err := sys.CreateThread(fmt.Sprintf("tenant%d-client%d", b+1, c), 50)
			if err != nil {
				log.Fatal(err)
			}
			sys.StartThread(t)
			if err := sys.Send(t, addr, 2, nil, false); err != nil {
				log.Fatal(err)
			}
			clients[b] = append(clients[b], t)
		}
	}
	fmt.Printf("%d tenants, %d queued requests each\n", tenants, clientsPerTenant)

	// Revoke tenant 2's badge with an interrupt landing mid-walk:
	// the four-field resume state on the endpoint (§3.4) carries the
	// operation across the preemption.
	sys.SetTimer(sys.Now() + 1_500)
	if err := sys.RevokeBadge(server, ep, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revoked badge 2: %d preemption points hit, worst latency %.1f µs\n",
		sys.Stats().Preemptions, verikern.CyclesToMicros(sys.MaxLatency()))

	// Check the outcome per tenant.
	for b := 0; b < tenants; b++ {
		aborted, waiting := 0, 0
		for _, c := range clients[b] {
			if c.WaitingOn != nil {
				waiting++
			} else {
				aborted++
			}
		}
		fmt.Printf("  tenant %d: %d aborted, %d still queued\n", b+1, aborted, waiting)
	}

	// The badge can now be re-issued with a fresh authenticity
	// guarantee: no old client can still use it.
	if _, err := sys.MintBadgedCap(server, ep, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("badge 2 re-issued to a new client")

	if err := sys.InvariantFailure(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all kernel invariants held throughout")
}
