// WCET toolchain demo: build a small "binary" with the image builder,
// run the full analysis pipeline on it (inlining, cache
// classification, IPET/ILP), reconstruct and replay the worst path,
// and show how a §5.2 infeasible-path constraint tightens the bound.
//
// This example drives the analysis layers directly (the same ones the
// kernel reproduction uses), so it doubles as a tour of the pipeline.
package main

import (
	"fmt"
	"log"

	"verikern/internal/arch"
	"verikern/internal/kimage"
	"verikern/internal/measure"
	"verikern/internal/wcet"
)

func main() {
	log.SetFlags(0)

	// A toy program: decode a request (switch on its type twice —
	// the Fig. 6 pattern), then process a buffer in a loop.
	img := kimage.New()
	buf := img.Data("buffer", 64*32)
	tbl := img.Data("table", 8192)

	f := img.NewFunc("handler")
	f.ALU(8)
	first := f.Switch(
		func(f *kimage.FuncBuilder) { // type A: table scan
			for i := uint32(0); i < 16; i++ {
				f.Load(tbl + i*32)
			}
		},
		func(f *kimage.FuncBuilder) { f.ALU(4) }, // type B: trivial
	)
	f.Loop(64, func(f *kimage.FuncBuilder) {
		f.LoadStride(buf, 32, 64)
		f.ALU(3)
	})
	second := f.Switch(
		func(f *kimage.FuncBuilder) { f.ALU(4) }, // type A: trivial
		func(f *kimage.FuncBuilder) { // type B: second table scan
			for i := uint32(0); i < 16; i++ {
				f.Load(tbl + 4096 + i*32)
			}
		},
	)
	f.Ret()
	img.Entries = []string{"handler"}
	if err := img.Link(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linked image: %d bytes of code\n", img.CodeBytes())

	hw := arch.Config{} // 532 MHz, L2 off, predictor off

	// Unconstrained analysis: the ILP freely combines the expensive
	// arm of BOTH switches, although they branch on the same type.
	a := wcet.New(img, hw)
	r, err := a.Analyze("handler")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunconstrained bound: %d cycles (%.1f µs)\n", r.Cycles, r.Micros)
	fmt.Printf("  CFG: %d nodes, %d loops; ILP: %d vars, %d constraints\n",
		len(r.Graph.Nodes), len(r.Graph.Loops), r.LPVars, r.LPConstraints)
	fmt.Printf("  classification: %d fetch hits, %d fetch misses, %d unclassified data refs\n",
		r.Classified.FetchHit, r.Classified.FetchMiss, r.Classified.DataUnknown)

	// Replay the reconstructed worst path on the simulated hardware
	// with polluted caches — the observed/computed comparison.
	obs := measure.Observe(img, hw, r.Trace, 100)
	fmt.Printf("  observed on hardware model: max %d cycles (ratio %.2f)\n",
		obs.Max, measure.Ratio(r.Cycles, obs.Max))

	// Add the infeasible-path constraints: arm i of the first switch
	// implies arm i of the second (they test the same value).
	a2 := wcet.New(img, hw)
	a2.AddConstraints(
		wcet.Consist("handler", first[0], second[0]),
		wcet.Consist("handler", first[1], second[1]),
	)
	r2, err := a2.Analyze("handler")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith consistency constraints: %d cycles (%.1f µs)\n", r2.Cycles, r2.Micros)
	fmt.Printf("  the bound dropped by %d cycles: the cross-switch path was infeasible\n",
		r.Cycles-r2.Cycles)
	fmt.Println("  (this is the \"a is consistent with b in f\" form of §5.2, used to")
	fmt.Println("   exclude the cap-type switch combinations of Fig. 6)")
}
