// Mixed-criticality demo: a hard real-time task shares the processor
// with an untrusted best-effort task that deliberately triggers the
// kernel's longest-running operations. The paper's motivation (§1) is
// exactly this consolidation: the kernel must bound the interrupt
// response the real-time task sees no matter what the untrusted task
// does.
//
// The demo runs the same adversarial workload against both kernel
// generations and prints the worst interrupt latency each exhibits,
// demonstrating that the preemption points (not scheduling priority)
// are what saves the real-time task.
package main

import (
	"fmt"
	"log"

	"verikern"
)

// attack floods an endpoint with blocked senders and then deletes it —
// the unbounded-queue deletion of §3.3 — with a timer IRQ (the RT
// task's release) landing mid-operation.
func attack(v verikern.Variant, waiters int) (worst uint64, preemptions uint64, err error) {
	sys, err := verikern.BootVariant(v)
	if err != nil {
		return 0, 0, err
	}
	adversary, err := sys.CreateThread("adversary", 10) // LOW priority
	if err != nil {
		return 0, 0, err
	}
	sys.StartThread(adversary)

	eps, err := sys.CreateObjects(adversary, verikern.TypeEndpoint, 0, 1)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < waiters; i++ {
		w, err := sys.CreateThread("w", 5)
		if err != nil {
			return 0, 0, err
		}
		sys.StartThread(w)
		if err := sys.Send(w, eps[0], 1, nil, false); err != nil {
			return 0, 0, err
		}
	}

	// The RT task's timer fires shortly after the deletion starts.
	// Priority cannot help: the kernel runs with interrupts disabled
	// until it reaches a preemption point or finishes.
	sys.SetTimer(sys.Now() + 2_000)
	if err := sys.DeleteCap(adversary, eps[0]); err != nil {
		return 0, 0, err
	}
	if err := sys.InvariantFailure(); err != nil {
		return 0, 0, err
	}
	return sys.MaxLatency(), sys.Stats().Preemptions, nil
}

func main() {
	log.SetFlags(0)
	const waiters = 512

	fmt.Printf("adversary queues %d threads on an endpoint, then deletes it;\n", waiters)
	fmt.Printf("the RT task's timer fires mid-deletion.\n\n")

	for _, v := range []verikern.Variant{verikern.Original, verikern.Modern} {
		worst, preemptions, err := attack(v, waiters)
		if err != nil {
			log.Fatalf("%v: %v", v, err)
		}
		fmt.Printf("%-9s kernel: worst interrupt latency %9d cycles (%8.1f µs), %d preemption points hit\n",
			v, worst, verikern.CyclesToMicros(worst), preemptions)
	}

	fmt.Println("\nThe original kernel holds interrupts off for the whole deletion —")
	fmt.Println("its latency scales with the adversary's queue. The modern kernel")
	fmt.Println("preempts after each dequeued waiter (§3.3), so the RT task's")
	fmt.Println("release is honoured within a bounded window regardless of load.")
}
