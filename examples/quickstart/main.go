// Quickstart: boot the modernised kernel, run a client/server IPC
// exchange, then compute the kernel's worst-case interrupt-response
// bound with the static analyser — the two halves of the paper in
// about fifty lines.
package main

import (
	"fmt"
	"log"

	"verikern"
)

func main() {
	log.SetFlags(0)

	// --- Functional side: an IPC ping-pong on the modern kernel ---
	sys, err := verikern.Boot(verikern.ModernKernel())
	if err != nil {
		log.Fatal(err)
	}
	server, err := sys.CreateThread("server", 200)
	if err != nil {
		log.Fatal(err)
	}
	sys.StartThread(server)
	client, err := sys.CreateThread("client", 100)
	if err != nil {
		log.Fatal(err)
	}
	sys.StartThread(client)

	eps, err := sys.CreateObjects(client, verikern.TypeEndpoint, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	ep := eps[0]

	if err := sys.Recv(server, ep); err != nil {
		log.Fatal(err)
	}
	start := sys.Now()
	if err := sys.Call(client, ep, 4, nil); err != nil {
		log.Fatal(err)
	}
	if err := sys.ReplyRecv(server, ep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IPC call + reply took %d simulated cycles (%.2f µs at 532 MHz)\n",
		sys.Now()-start, verikern.CyclesToMicros(sys.Now()-start))
	// A plain send to the now-waiting server takes the fastpath
	// (§6.1: ~200-250 cycles for the fastpath body).
	start = sys.Now()
	if err := sys.Send(client, ep, 2, nil, false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fastpath send took %d cycles\n", sys.Now()-start)
	fmt.Printf("fastpath IPCs: %d, slowpath: %d\n",
		sys.Stats().FastpathIPCs, sys.Stats().SlowpathIPCs)
	if err := sys.InvariantFailure(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all kernel invariants held")

	// --- Analysis side: the worst-case interrupt latency bound ---
	im, err := verikern.BuildImage(verikern.Modern, false)
	if err != nil {
		log.Fatal(err)
	}
	hw := verikern.Hardware{} // 532 MHz, L2 off, predictor off
	sysBound, err := im.Analyze(hw, verikern.Syscall)
	if err != nil {
		log.Fatal(err)
	}
	irqBound, err := im.Analyze(hw, verikern.Interrupt)
	if err != nil {
		log.Fatal(err)
	}
	total := sysBound.Cycles + irqBound.Cycles
	fmt.Printf("\nworst-case interrupt latency bound: %d cycles (%.0f µs)\n",
		total, verikern.CyclesToMicros(total))
	fmt.Println("(the paper's corresponding figure: 189,117 cycles ≈ 356 µs)")
}
