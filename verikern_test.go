package verikern

import (
	"context"
	"strings"
	"testing"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	rows, err := Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byEntry := make(map[EntryPoint]Table1Row)
	for _, r := range rows {
		byEntry[r.Entry] = r
		if r.WithMicros >= r.WithoutMicros {
			t.Errorf("%s: pinning did not help (%.1f vs %.1f)", r.Entry, r.WithMicros, r.WithoutMicros)
		}
		if r.GainPercent <= 0 || r.GainPercent >= 100 {
			t.Errorf("%s: gain %.0f%% out of range", r.Entry, r.GainPercent)
		}
	}
	// The paper's key shape: the interrupt path gains the most from
	// pinning (46% vs 10% for syscalls).
	if byEntry[Interrupt].GainPercent <= byEntry[Syscall].GainPercent {
		t.Errorf("interrupt gain (%.0f%%) not above syscall gain (%.0f%%)",
			byEntry[Interrupt].GainPercent, byEntry[Syscall].GainPercent)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "System call") || !strings.Contains(out, "% gain") {
		t.Error("Table 1 formatting incomplete")
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	rows, err := Table2(context.Background(), 24)
	if err != nil {
		t.Fatal(err)
	}
	byEntry := make(map[EntryPoint]Table2Row)
	for _, r := range rows {
		byEntry[r.Entry] = r
		// Soundness: observed never exceeds computed.
		if r.L2Off.Ratio < 1 || r.L2On.Ratio < 1 {
			t.Errorf("%s: ratio below 1 (unsound bound)", r.Entry)
		}
		// The changes reduce every bound.
		if r.L2Off.ComputedMicros >= r.BeforeL2Off {
			t.Errorf("%s: after (%.1f) not below before (%.1f)", r.Entry,
				r.L2Off.ComputedMicros, r.BeforeL2Off)
		}
		// L2-on computed bounds are worse than L2-off (added
		// pessimism), as in the paper.
		if r.L2On.ComputedMicros <= r.L2Off.ComputedMicros {
			t.Errorf("%s: L2-on computed (%.1f) not above L2-off (%.1f)", r.Entry,
				r.L2On.ComputedMicros, r.L2Off.ComputedMicros)
		}
	}
	// Factor of ~an order of magnitude on the syscall path.
	sys := byEntry[Syscall]
	if ratio := sys.BeforeL2Off / sys.L2Off.ComputedMicros; ratio < 5 {
		t.Errorf("syscall improvement %.1fx below the paper's scale (11.6x)", ratio)
	}
	// Pessimism concentrates on the syscall path, and grows with L2
	// (paper: 3.26 -> 5.42 for syscalls, ~1.04 for short paths).
	if sys.L2On.Ratio <= sys.L2Off.Ratio {
		t.Errorf("syscall ratio did not grow with L2: %.2f vs %.2f", sys.L2On.Ratio, sys.L2Off.Ratio)
	}
	if sys.L2Off.Ratio <= byEntry[UndefinedIn].L2Off.Ratio {
		t.Errorf("syscall ratio (%.2f) not above short-path ratio (%.2f)",
			sys.L2Off.Ratio, byEntry[UndefinedIn].L2Off.Ratio)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "Ratio") {
		t.Error("Table 2 formatting incomplete")
	}
}

func TestFig8ShapeMatchesPaper(t *testing.T) {
	bars, err := Fig8(context.Background(), 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 8 {
		t.Fatalf("%d bars, want 8", len(bars))
	}
	get := func(e EntryPoint, l2 bool) float64 {
		for _, b := range bars {
			if b.Entry == e && b.L2Enabled == l2 {
				return b.OverestimationPercent
			}
		}
		t.Fatalf("missing bar %s l2=%v", e, l2)
		return 0
	}
	for _, e := range EntryPoints() {
		if get(e, true) < 0 || get(e, false) < 0 {
			t.Errorf("%s: negative overestimation (unsound)", e)
		}
		// L2 enablement increases model pessimism on every path.
		if get(e, true) <= get(e, false) {
			t.Errorf("%s: L2-on overestimation (%.0f%%) not above L2-off (%.0f%%)",
				e, get(e, true), get(e, false))
		}
	}
	if s := FormatFig8(bars); !strings.Contains(s, "L2 enabled") {
		t.Error("Fig 8 formatting incomplete")
	}
}

func TestFig9ShapeMatchesPaper(t *testing.T) {
	bars, err := Fig9(context.Background(), 24)
	if err != nil {
		t.Fatal(err)
	}
	get := func(e EntryPoint, cfg string) float64 {
		for _, b := range bars {
			if b.Entry == e && b.Config == cfg {
				return b.Normalised
			}
		}
		t.Fatalf("missing bar %s %s", e, cfg)
		return 0
	}
	for _, e := range EntryPoints() {
		if get(e, "Baseline") != 1.0 {
			t.Errorf("%s: baseline not normalised to 1", e)
		}
		// §6.4's qualitative results: enabling the L2 does not help
		// (and can hurt) the cold-cache worst case, because the
		// polluted runs pay the higher 96-cycle memory latency on
		// first touch; the branch predictor gives at most a minor
		// change either way. Our simulator's short paths are more
		// first-touch-dominated than the real kernel's, so the L2
		// penalty runs above the paper's 8% — see EXPERIMENTS.md.
		if l2 := get(e, "L2 enabled"); l2 < 0.7 || l2 > 1.8 {
			t.Errorf("%s: L2-on normalised %.2f outside [0.7, 1.8]", e, l2)
		}
		if bp := get(e, "B-pred enabled"); bp < 0.85 || bp > 1.05 {
			t.Errorf("%s: branch predictor alone changed worst case to %.2fx", e, bp)
		}
		if both := get(e, "L2+B-pred enabled"); both < 0.6 || both > 1.8 {
			t.Errorf("%s: combined config %.2fx outside band", e, both)
		}
	}
	// The paper's headline Fig. 9 observation: the page-fault path's
	// observed worst case increased with the L2 enabled.
	if pf := get(PageFault, "L2 enabled"); pf <= 1.0 {
		t.Errorf("page fault L2-on normalised %.2f; paper reports an increase", pf)
	}
	// The long syscall path re-uses enough lines for L2 hits to
	// offset the higher memory latency, so its L2 penalty is the
	// smallest — the compensation effect behind the paper's ≤8%.
	sysL2 := get(Syscall, "L2 enabled")
	for _, e := range []EntryPoint{Interrupt} {
		if get(e, "L2 enabled") < sysL2 {
			t.Errorf("L2 penalty on %s (%.2f) below syscall's (%.2f); compensation should favour the long path",
				e, get(e, "L2 enabled"), sysL2)
		}
	}
	if s := FormatFig9(bars); !strings.Contains(s, "Baseline") {
		t.Error("Fig 9 formatting incomplete")
	}
}

func TestHeadlineMatchesPaperMagnitude(t *testing.T) {
	off, err := ComputeHeadline(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	on, err := ComputeHeadline(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 189,117 cycles / 356 µs with L2 off; 481 µs with L2 on.
	if off.TotalCycles < 90000 || off.TotalCycles > 400000 {
		t.Errorf("L2-off headline %d cycles outside the paper's magnitude (189117)", off.TotalCycles)
	}
	if on.TotalMicros <= off.TotalMicros {
		t.Errorf("L2-on headline (%.0f µs) not above L2-off (%.0f µs)", on.TotalMicros, off.TotalMicros)
	}
	t.Logf("headline: L2 off %d cycles (%.0f µs), L2 on %.0f µs; paper: 189117 cycles (356 µs), 481 µs",
		off.TotalCycles, off.TotalMicros, on.TotalMicros)
}

func TestFastpathCyclesMagnitude(t *testing.T) {
	c, err := FastpathCycles()
	if err != nil {
		t.Fatal(err)
	}
	// The fastpath itself is 230 cycles; the measured syscall also
	// includes entry/exit and a context switch.
	if c < 200 || c > 2500 {
		t.Errorf("fastpath round %d cycles outside the paper's order (200-250 + entry/exit)", c)
	}
}

func TestAnalysisTimesSyscallDominates(t *testing.T) {
	times, err := AnalysisTimes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// §6.3: "the analysis of the latter three entry points completed
	// within seconds, whilst the analysis of the system call entry
	// point took significantly longer."
	for _, e := range []EntryPoint{Interrupt, PageFault, UndefinedIn} {
		if times[Syscall] < times[e] {
			t.Errorf("syscall analysis (%v) faster than %s (%v)", times[Syscall], e, times[e])
		}
	}
}

func TestBootVariants(t *testing.T) {
	for _, v := range []Variant{Original, Modern} {
		sys, err := BootVariant(v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if v == Modern && sys.Scheduler().Kind() != BitmapScheduler {
			t.Error("modern system not using bitmap scheduler")
		}
		if v == Original && sys.Scheduler().Kind() != LazyScheduler {
			t.Error("original system not using lazy scheduler")
		}
	}
}

func TestAblationL2LockReducesBounds(t *testing.T) {
	rows, err := AblationL2Lock(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byEntry := make(map[EntryPoint]L2LockAblation)
	for _, r := range rows {
		byEntry[r.Entry] = r
		if r.LockedL2Cycles >= r.PlainL2Cycles {
			t.Errorf("%s: L2 locking did not reduce the bound (%d vs %d)",
				r.Entry, r.LockedL2Cycles, r.PlainL2Cycles)
		}
	}
	// The interrupt path — short and fetch-dominated — sees the big
	// effect ("L2 cache pinning can be very effective at reducing
	// latency for instruction cache misses", §8); the syscall path
	// is data-dominated (adversarial cap walks), so its gain is
	// small.
	if g := byEntry[Interrupt].ReductionPercent; g < 20 {
		t.Errorf("interrupt reduction %.0f%% below the drastic effect expected", g)
	}
	if byEntry[Interrupt].ReductionPercent <= byEntry[Syscall].ReductionPercent {
		t.Error("interrupt path should benefit more from L2 locking than the syscall path")
	}
}

// TestL2LockSoundness: observed worst cases stay below the bound under
// the locked-kernel configuration too.
func TestL2LockSoundness(t *testing.T) {
	im, err := BuildImage(Modern, false)
	if err != nil {
		t.Fatal(err)
	}
	hw := Hardware{L2Enabled: true, L2LockedKernel: true}
	for _, e := range EntryPoints() {
		bd, err := im.Analyze(hw, e)
		if err != nil {
			t.Fatal(err)
		}
		obs := im.Observe(hw, bd, 32)
		if obs.Max > bd.Cycles {
			t.Errorf("%s: observed %d exceeds bound %d under L2 locking", e, obs.Max, bd.Cycles)
		}
	}
}

// TestFunctionalLatencyWithinAnalysedBound ties the two halves of the
// reproduction together: the worst interrupt latency the functional
// kernel exhibits under the full adversarial workload suite stays
// within the statically analysed worst-case interrupt latency.
func TestFunctionalLatencyWithinAnalysedBound(t *testing.T) {
	headline, err := ComputeHeadline(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Boot(ModernKernel())
	if err != nil {
		t.Fatal(err)
	}
	adv, err := sys.CreateThread("adv", 50)
	if err != nil {
		t.Fatal(err)
	}
	sys.StartThread(adv)
	sys.SetPeriodicTimer(30_000)
	// The §3 attack suite, back to back.
	eps, err := sys.CreateObjects(adv, TypeEndpoint, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	badged, err := sys.MintBadgedCap(adv, eps[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		w, err := sys.CreateThread("w", 10)
		if err != nil {
			t.Fatal(err)
		}
		sys.StartThread(w)
		sys.Send(w, badged, 1, nil, false)
	}
	if err := sys.RevokeBadge(adv, eps[0], 5); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateObjects(adv, TypeFrame, 20, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeleteCap(adv, eps[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.InvariantFailure(); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().IRQsServiced < 5 {
		t.Fatalf("only %d IRQs serviced", sys.Stats().IRQsServiced)
	}
	if sys.MaxLatency() > headline.TotalCycles {
		t.Errorf("functional worst latency %d exceeds the analysed bound %d",
			sys.MaxLatency(), headline.TotalCycles)
	}
	t.Logf("functional worst latency %d cycles vs analysed bound %d cycles",
		sys.MaxLatency(), headline.TotalCycles)
}

// TestAblationClearChunkFloor reproduces the §3.5 argument: shrinking
// the clearing granularity below 1 KiB cannot improve the worst-case
// latency while the non-preemptible 1 KiB kernel-window copy remains,
// while much larger chunks visibly hurt it.
func TestAblationClearChunkFloor(t *testing.T) {
	rows, err := AblationClearChunk(context.Background(), []uint32{256, 1024, 16384})
	if err != nil {
		t.Fatal(err)
	}
	byChunk := map[uint32]ChunkAblationRow{}
	for _, r := range rows {
		byChunk[r.ChunkBytes] = r
	}
	fine, std, coarse := byChunk[256], byChunk[1024], byChunk[16384]
	// The kernel-window copy (~10640 cycles) floors the worst case
	// regardless of chunk size.
	if fine.WorstLatency < 10_000 || std.WorstLatency < 10_000 {
		t.Errorf("latency floor missing: fine %d, std %d", fine.WorstLatency, std.WorstLatency)
	}
	// Finer chunks give no real latency benefit over 1 KiB…
	if fine.WorstLatency+2_000 < std.WorstLatency {
		t.Errorf("256 B chunks 'improved' latency %d vs %d — the §3.5 argument should forbid this",
			fine.WorstLatency, std.WorstLatency)
	}
	// …while much coarser chunks clearly hurt.
	if coarse.WorstLatency <= std.WorstLatency {
		t.Errorf("16 KiB chunks (%d) not worse than 1 KiB (%d)", coarse.WorstLatency, std.WorstLatency)
	}
	t.Logf("worst latency by chunk: 256B=%d 1KiB=%d 16KiB=%d",
		fine.WorstLatency, std.WorstLatency, coarse.WorstLatency)
}

// TestAblationTCMOrdering: TCM < pinned < baseline on the interrupt
// path (§5.1's mechanisms compared).
func TestAblationTCMOrdering(t *testing.T) {
	r, err := AblationTCM(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !(r.TCMCycles < r.PinnedCycles && r.PinnedCycles < r.BaselineCycles) {
		t.Errorf("expected TCM < pinned < baseline, got %d / %d / %d",
			r.TCMCycles, r.PinnedCycles, r.BaselineCycles)
	}
}
