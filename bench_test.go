package verikern

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus microbenchmarks and ablations for the individual
// design changes of §3. Custom metrics report the simulated-cycle
// results alongside Go's wall-clock numbers: `cycles/op` is the
// simulated cost of the operation under benchmark, `us(paper-scale)`
// its value on the 532 MHz clock.
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	"verikern/internal/ilp"
	"verikern/internal/kernel"
	"verikern/internal/kobj"
	"verikern/internal/obs"
	"verikern/internal/sched"
	"verikern/internal/wcet"
)

// --- Experiment benches: one per table/figure ---

// BenchmarkTable1CachePinning regenerates Table 1 (§4).
func BenchmarkTable1CachePinning(b *testing.B) {
	var rows []Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = Table1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.GainPercent, "gain%:"+string(r.Entry))
	}
}

// BenchmarkTable2WCET regenerates Table 2 (§6).
func BenchmarkTable2WCET(b *testing.B) {
	var rows []Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = Table2(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Entry == Syscall {
			b.ReportMetric(r.BeforeL2Off/r.L2Off.ComputedMicros, "syscall-improvement-x")
			b.ReportMetric(r.L2Off.Ratio, "syscall-ratio-l2off")
			b.ReportMetric(r.L2On.Ratio, "syscall-ratio-l2on")
		}
	}
}

// BenchmarkFig8Overestimation regenerates Figure 8 (§6.2).
func BenchmarkFig8Overestimation(b *testing.B) {
	var bars []Fig8Bar
	var err error
	for i := 0; i < b.N; i++ {
		bars, err = Fig8(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, bar := range bars {
		if bar.Entry == Syscall {
			key := "overest%l2off"
			if bar.L2Enabled {
				key = "overest%l2on"
			}
			b.ReportMetric(bar.OverestimationPercent, key)
		}
	}
}

// BenchmarkFig9Features regenerates Figure 9 (§6.4).
func BenchmarkFig9Features(b *testing.B) {
	var bars []Fig9Bar
	var err error
	for i := 0; i < b.N; i++ {
		bars, err = Fig9(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, bar := range bars {
		if bar.Entry == PageFault && bar.Config == "L2 enabled" {
			b.ReportMetric(bar.Normalised, "pf-l2on-normalised")
		}
	}
}

// BenchmarkHeadlineLatency computes the §6 headline bound.
func BenchmarkHeadlineLatency(b *testing.B) {
	var h Headline
	var err error
	for i := 0; i < b.N; i++ {
		h, err = ComputeHeadline(context.Background(), false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(h.TotalCycles), "cycles(paper:189117)")
	b.ReportMetric(h.TotalMicros, "us(paper:356)")
}

// BenchmarkAnalysisTime runs the §6.3 dominant analysis (the system
// call handler) once per iteration.
func BenchmarkAnalysisTime(b *testing.B) {
	im, err := BuildImage(Modern, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := im.Analyze(Hardware{}, Syscall); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Functional-kernel microbenches (§3, §6.1) ---

// BenchmarkFastpathIPC measures the fastpath send round (§6.1: the
// fastpath body is 200–250 cycles on the ARM1136).
func BenchmarkFastpathIPC(b *testing.B) {
	sys, err := Boot(ModernKernel())
	if err != nil {
		b.Fatal(err)
	}
	server, _ := sys.CreateThread("server", 200)
	sys.StartThread(server)
	client, _ := sys.CreateThread("client", 100)
	sys.StartThread(client)
	eps, err := sys.CreateObjects(client, TypeEndpoint, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Recv(server, eps[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Send(client, eps[0], 2, nil, false); err != nil {
			b.Fatal(err)
		}
		// Re-arm: the server waits again (timed; itself a fast
		// kernel operation).
		server.State = kobj.ThreadRunning
		if err := sys.Recv(server, eps[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sys.Stats().FastpathIPCs == 0 {
		b.Fatal("fastpath never taken")
	}
	cycles, _ := FastpathCycles()
	b.ReportMetric(float64(cycles), "simcycles/op")
}

// BenchmarkSlowpathIPC measures a full-featured slowpath call/reply.
func BenchmarkSlowpathIPC(b *testing.B) {
	sys, err := Boot(ModernKernel())
	if err != nil {
		b.Fatal(err)
	}
	server, _ := sys.CreateThread("server", 200)
	sys.StartThread(server)
	client, _ := sys.CreateThread("client", 100)
	sys.StartThread(client)
	eps, _ := sys.CreateObjects(client, TypeEndpoint, 0, 1)
	sys.Recv(server, eps[0])
	before := sys.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Call(client, eps[0], 120, nil); err != nil {
			b.Fatal(err)
		}
		if err := sys.ReplyRecv(server, eps[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(sys.Now()-before)/float64(b.N), "simcycles/op")
	}
}

// BenchmarkAdversarialDecode measures sends through the Fig. 7
// worst-case capability space.
func BenchmarkAdversarialDecode(b *testing.B) {
	for _, levels := range []int{1, 32} {
		name := "shallow"
		if levels == 32 {
			name = "deep32"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := Boot(ModernKernel())
			if err != nil {
				b.Fatal(err)
			}
			adv, _ := sys.CreateThread("adv", 100)
			sys.StartThread(adv)
			addr, err := sys.BuildAdversarialCSpace(adv, levels)
			if err != nil {
				b.Fatal(err)
			}
			before := sys.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Send(adv, addr, 1, nil, false); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(sys.Now()-before)/float64(b.N), "simcycles/op")
			}
		})
	}
}

// BenchmarkLazyVsBenno reproduces the §3.1 comparison: a scheduling
// pass after mass blocking, per scheduler design.
func BenchmarkLazyVsBenno(b *testing.B) {
	for _, kind := range []sched.Kind{sched.Lazy, sched.Benno, sched.BennoBitmap} {
		b.Run(kind.String(), func(b *testing.B) {
			// The 512-thread setup is timed along with the
			// pass (untimed per-iteration setup would make
			// b.N explode); the simulated-cycle metric
			// isolates the scheduling pass itself.
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s := sched.New(kind)
				for j := 0; j < 512; j++ {
					t := &kobj.TCB{Prio: 128, State: kobj.ThreadRunnable}
					s.Enqueue(t)
					t.State = kobj.ThreadBlockedOnSend
					s.OnBlock(t)
				}
				_, c := s.ChooseThread()
				cycles += c
			}
			if b.N > 0 {
				b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/pass")
			}
		})
	}
}

// BenchmarkSchedulerBitmap compares ChooseThread with and without the
// two-level CLZ bitmap (§3.2) at a low priority (the scan's worst
// case).
func BenchmarkSchedulerBitmap(b *testing.B) {
	for _, kind := range []sched.Kind{sched.Benno, sched.BennoBitmap} {
		b.Run(kind.String(), func(b *testing.B) {
			s := sched.New(kind)
			t := &kobj.TCB{Prio: 0, State: kobj.ThreadRunnable}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				s.Enqueue(t)
				_, c := s.ChooseThread()
				cycles += c
			}
			if b.N > 0 {
				b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/choose")
			}
		})
	}
}

// latencyUnderAttack measures the worst interrupt latency while the
// kernel performs the given adversarial operation.
func latencyUnderAttack(b *testing.B, cfg KernelConfig, setup func(*System, *TCB) func() error) uint64 {
	b.Helper()
	sys, err := Boot(cfg)
	if err != nil {
		b.Fatal(err)
	}
	adv, err := sys.CreateThread("adv", 100)
	if err != nil {
		b.Fatal(err)
	}
	sys.StartThread(adv)
	op := setup(sys, adv)
	sys.SetTimer(sys.Now() + kernel.CostKernelEntry + kernel.CostSyscallDecode + 200)
	if err := op(); err != nil {
		b.Fatal(err)
	}
	if err := sys.InvariantFailure(); err != nil {
		b.Fatal(err)
	}
	return sys.MaxLatency()
}

// BenchmarkEndpointDeletion reproduces §3.3: interrupt latency during
// endpoint deletion with a 256-entry queue, per kernel variant.
func BenchmarkEndpointDeletion(b *testing.B) {
	for _, v := range []struct {
		name string
		cfg  KernelConfig
	}{{"original", OriginalKernel()}, {"modern", ModernKernel()}} {
		b.Run(v.name, func(b *testing.B) {
			var worst uint64
			for i := 0; i < b.N; i++ {
				worst = latencyUnderAttack(b, v.cfg, func(sys *System, adv *TCB) func() error {
					eps, err := sys.CreateObjects(adv, TypeEndpoint, 0, 1)
					if err != nil {
						b.Fatal(err)
					}
					for j := 0; j < 256; j++ {
						w, _ := sys.CreateThread("w", 50)
						sys.StartThread(w)
						sys.Send(w, eps[0], 1, nil, false)
					}
					return func() error { return sys.DeleteCap(adv, eps[0]) }
				})
			}
			b.ReportMetric(float64(worst), "worst-latency-cycles")
		})
	}
}

// BenchmarkBadgedAbort reproduces §3.4: latency during badge
// revocation over a populated queue.
func BenchmarkBadgedAbort(b *testing.B) {
	for _, v := range []struct {
		name string
		cfg  KernelConfig
	}{{"original", OriginalKernel()}, {"modern", ModernKernel()}} {
		b.Run(v.name, func(b *testing.B) {
			var worst uint64
			for i := 0; i < b.N; i++ {
				worst = latencyUnderAttack(b, v.cfg, func(sys *System, adv *TCB) func() error {
					eps, err := sys.CreateObjects(adv, TypeEndpoint, 0, 1)
					if err != nil {
						b.Fatal(err)
					}
					badged, err := sys.MintBadgedCap(adv, eps[0], 3)
					if err != nil {
						b.Fatal(err)
					}
					for j := 0; j < 256; j++ {
						w, _ := sys.CreateThread("w", 50)
						sys.StartThread(w)
						sys.Send(w, badged, 1, nil, false)
					}
					return func() error { return sys.RevokeBadge(adv, eps[0], 3) }
				})
			}
			b.ReportMetric(float64(worst), "worst-latency-cycles")
		})
	}
}

// BenchmarkObjectCreation reproduces §3.5: latency during 1 MiB frame
// creation (a long memory clear).
func BenchmarkObjectCreation(b *testing.B) {
	for _, v := range []struct {
		name string
		cfg  KernelConfig
	}{{"original", OriginalKernel()}, {"modern", ModernKernel()}} {
		b.Run(v.name, func(b *testing.B) {
			var worst uint64
			for i := 0; i < b.N; i++ {
				worst = latencyUnderAttack(b, v.cfg, func(sys *System, adv *TCB) func() error {
					return func() error {
						_, err := sys.CreateObjects(adv, TypeFrame, 20, 1)
						return err
					}
				})
			}
			b.ReportMetric(float64(worst), "worst-latency-cycles")
		})
	}
}

// BenchmarkVSpaceDesigns reproduces §3.6: address-space teardown under
// the two designs.
func BenchmarkVSpaceDesigns(b *testing.B) {
	for _, v := range []struct {
		name string
		cfg  KernelConfig
	}{{"asid", OriginalKernel()}, {"shadow", ModernKernel()}} {
		b.Run(v.name, func(b *testing.B) {
			var worst uint64
			for i := 0; i < b.N; i++ {
				worst = latencyUnderAttack(b, v.cfg, func(sys *System, adv *TCB) func() error {
					pds, err := sys.CreateObjects(adv, TypePageDirectory, 0, 1)
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.AssignVSpace(adv, pds[0]); err != nil {
						b.Fatal(err)
					}
					pts, _ := sys.CreateObjects(adv, TypePageTable, 0, 1)
					sys.MapPageTable(adv, pts[0], 64<<20)
					frames, _ := sys.CreateObjects(adv, TypeFrame, 12, 64)
					for j, f := range frames {
						sys.MapFrame(adv, f, uint32(64<<20)+uint32(j)<<12)
					}
					return func() error { return sys.DeleteVSpace(adv, pds[0]) }
				})
			}
			b.ReportMetric(float64(worst), "worst-latency-cycles")
		})
	}
}

// --- Ablations: design choices DESIGN.md calls out ---

// BenchmarkAblationConstraints quantifies the §5.2 user constraints'
// effect on the syscall bound.
func BenchmarkAblationConstraints(b *testing.B) {
	im, err := BuildImage(Modern, false)
	if err != nil {
		b.Fatal(err)
	}
	var with, without uint64
	for i := 0; i < b.N; i++ {
		free := wcet.New(im.Img, Hardware{})
		rf, err := free.Analyze(string(Syscall))
		if err != nil {
			b.Fatal(err)
		}
		without = rf.Cycles
		con := wcet.New(im.Img, Hardware{})
		con.AddConstraints(im.Constraints...)
		rc, err := con.Analyze(string(Syscall))
		if err != nil {
			b.Fatal(err)
		}
		with = rc.Cycles
	}
	b.ReportMetric(float64(without-with), "cycles-saved-by-constraints")
}

// BenchmarkAblationSplitSendReceive quantifies the §6.1 future-work
// preemption point between ReplyRecv's phases.
func BenchmarkAblationSplitSendReceive(b *testing.B) {
	run := func(split bool) uint64 {
		cfg := ModernKernel()
		cfg.SplitSendReceive = split
		cfg.Fastpath = false
		sys, err := Boot(cfg)
		if err != nil {
			b.Fatal(err)
		}
		server, _ := sys.CreateThread("server", 200)
		sys.StartThread(server)
		client, _ := sys.CreateThread("client", 100)
		sys.StartThread(client)
		eps, _ := sys.CreateObjects(client, TypeEndpoint, 0, 1)
		sys.Recv(server, eps[0])
		sys.Call(client, eps[0], 120, nil)
		sys.SetTimer(sys.Now() + kernel.CostKernelEntry + 1)
		if err := sys.ReplyRecv(server, eps[0]); err != nil {
			b.Fatal(err)
		}
		return sys.MaxLatency()
	}
	var with, without uint64
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(float64(without), "latency-unsplit")
	b.ReportMetric(float64(with), "latency-split")
}

// BenchmarkILPSolve isolates the ILP solver on the syscall IPET
// problem — the paper's dominant analysis cost (§6.3).
func BenchmarkILPSolve(b *testing.B) {
	// A representative flow problem: a chain of diamonds with a
	// loop, resembling the IPET structure.
	build := func() *ilp.Problem {
		p := ilp.NewProblem()
		const n = 60
		prev := p.AddVar("entry", 1, true)
		p.AddConstraint(ilp.Constraint{Coeffs: map[int]float64{prev: 1}, Sense: ilp.EQ, RHS: 1})
		for i := 0; i < n; i++ {
			a := p.AddVar("a", float64(10+i%7), true)
			c := p.AddVar("b", float64(5+i%11), true)
			j := p.AddVar("j", 1, true)
			p.AddConstraint(ilp.Constraint{Coeffs: map[int]float64{a: 1, c: 1, prev: -1}, Sense: ilp.EQ, RHS: 0})
			p.AddConstraint(ilp.Constraint{Coeffs: map[int]float64{j: 1, a: -1, c: -1}, Sense: ilp.EQ, RHS: 0})
			prev = j
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := build()
		s, err := ilp.Solve(p)
		if err != nil || s.Status != ilp.Optimal {
			b.Fatalf("%v %v", err, s)
		}
	}
}

// BenchmarkWorstTraceReplay measures replaying the syscall worst path
// on the concrete machine — the unit of the observed columns.
func BenchmarkWorstTraceReplay(b *testing.B) {
	im, err := BuildImage(Modern, false)
	if err != nil {
		b.Fatal(err)
	}
	bd, err := im.Analyze(Hardware{}, Syscall)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machineFor(im, Hardware{})
		m.Pollute(uint32(i))
		m.Run(bd.Result.Trace)
	}
}

// BenchmarkAblationL2Locking quantifies the §4/§6.4 future-work idea:
// locking the whole kernel into the L2 cache.
func BenchmarkAblationL2Locking(b *testing.B) {
	var rows []L2LockAblation
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = AblationL2Lock(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Entry == Syscall {
			b.ReportMetric(r.ReductionPercent, "syscall-bound-reduction%")
		}
	}
}

// BenchmarkAblationClearChunk sweeps the §3.5 preemption granularity.
func BenchmarkAblationClearChunk(b *testing.B) {
	var rows []ChunkAblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = AblationClearChunk(context.Background(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.ChunkBytes == 256 || r.ChunkBytes == 1024 || r.ChunkBytes == 16384 {
			b.ReportMetric(float64(r.WorstLatency), fmt.Sprintf("latency@%dB", r.ChunkBytes))
		}
	}
}

// BenchmarkAblationTCM compares the §4/§5.1 latency-hiding mechanisms
// on the interrupt path.
func BenchmarkAblationTCM(b *testing.B) {
	var r TCMAblation
	var err error
	for i := 0; i < b.N; i++ {
		r, err = AblationTCM(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.BaselineCycles), "irq-baseline")
	b.ReportMetric(float64(r.PinnedCycles), "irq-pinned")
	b.ReportMetric(float64(r.TCMCycles), "irq-tcm")
}

// --- Observability benches ---

// BenchmarkTracerOverhead runs the fastpath IPC round with tracing
// detached and attached. The disabled case is the acceptance criterion:
// every emit site reduces to one predictable nil check, so the two
// sub-benchmarks must be within noise of each other.
func BenchmarkTracerOverhead(b *testing.B) {
	run := func(b *testing.B, tracer *obs.Tracer) {
		sys, err := Boot(ModernKernel())
		if err != nil {
			b.Fatal(err)
		}
		if tracer != nil {
			sys.SetTracer(tracer)
		}
		server, _ := sys.CreateThread("server", 200)
		sys.StartThread(server)
		client, _ := sys.CreateThread("client", 100)
		sys.StartThread(client)
		eps, err := sys.CreateObjects(client, TypeEndpoint, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Recv(server, eps[0]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.Send(client, eps[0], 2, nil, false); err != nil {
				b.Fatal(err)
			}
			server.State = kobj.ThreadRunning
			if err := sys.Recv(server, eps[0]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, obs.NewTracer(1<<16)) })
}

// BenchmarkObsEmit isolates the tracer's own cost: the nil-receiver
// fast path (what a production build pays everywhere) and a live emit
// into the preallocated ring (which must not allocate).
func BenchmarkObsEmit(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var tr *obs.Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Emit(obs.KindPreemptHit, uint64(i), 0, 0)
		}
	})
	b.Run("live", func(b *testing.B) {
		tr := obs.NewTracer(1 << 12)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Emit(obs.KindIRQService, uint64(i), uint64(i%512), 0)
		}
	})
}
