module verikern

go 1.22
