package verikern

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"verikern/internal/arch"
	"verikern/internal/machine"
	"verikern/internal/measure"
	"verikern/internal/soak"
)

// DefaultSimBenchRuns is the timed replay count per engine per
// configuration for `kzm-sim -bench-sim`.
const DefaultSimBenchRuns = 2000

// SimBenchEntry is one configuration's engine comparison: the same
// warm interrupt-path replay workload timed on the naive and memoized
// simulator engines. The engines are differentially proven identical
// (internal/machine, internal/soak), so the entry reports pure
// throughput: replays/sec, simulated cycles/sec, allocations per
// replay, and the memo's hit rate.
type SimBenchEntry struct {
	// Label names the image configuration (kernel generation × pinning).
	Label string `json:"label"`
	// Arch is the hardware backend the replay machine simulated.
	Arch string `json:"arch"`
	// Pinned reports whether the L1 way-pinned image was replayed.
	Pinned bool `json:"pinned"`
	// TraceBlocks is the replayed worst-case trace's block count.
	TraceBlocks int `json:"trace_blocks"`
	// Runs is the timed replay count per engine.
	Runs int `json:"runs"`
	// CyclesPerRun is the simulated cost of one warm replay (identical
	// across engines — SimReport fails if they ever disagree).
	CyclesPerRun uint64 `json:"cycles_per_run"`
	// NaiveOpsPerSec / MemoOpsPerSec are warm replays per wall second.
	NaiveOpsPerSec float64 `json:"naive_ops_per_sec"`
	MemoOpsPerSec  float64 `json:"memo_ops_per_sec"`
	// NaiveCyclesPerSec / MemoCyclesPerSec are simulated cycles
	// retired per wall second — the headline throughput axis.
	NaiveCyclesPerSec float64 `json:"naive_cycles_per_sec"`
	MemoCyclesPerSec  float64 `json:"memo_cycles_per_sec"`
	// NaiveAllocsPerOp / MemoAllocsPerOp are heap allocations per
	// replay (runtime.MemStats Mallocs delta over the timed loop).
	NaiveAllocsPerOp float64 `json:"naive_allocs_per_op"`
	MemoAllocsPerOp  float64 `json:"memo_allocs_per_op"`
	// MemoHits / MemoMisses / HitRate summarise the memo's per-block
	// lookup outcomes over warm-up plus the timed loop (a run-level hit
	// counts every block in the trace as a hit).
	MemoHits   uint64  `json:"memo_hits"`
	MemoMisses uint64  `json:"memo_misses"`
	HitRate    float64 `json:"hit_rate"`
	// RunHits / RunMisses count whole-trace replays served by the
	// run-level memo (one compiled replay instead of a block walk).
	RunHits   uint64 `json:"run_hits"`
	RunMisses uint64 `json:"run_misses"`
	// Speedup is memo wall time over naive wall time, as naive/memo.
	Speedup float64 `json:"speedup"`
}

// SimBench is the BENCH_sim.json document.
type SimBench struct {
	Seed    uint64          `json:"seed"`
	Runs    int             `json:"runs"`
	Configs []SimBenchEntry `json:"configs"`
}

// simWarmups is how many replays warm each engine's machine (and the
// memo) before the timed loop, so the loop measures the steady state.
const simWarmups = 3

// simEngine times `runs` warm replays of the plan's trace on one
// machine. A nil memo selects the naive engine. It returns the wall
// time of the timed loop, the summed simulated cycles, and the heap
// allocations the loop performed.
func simEngine(plan *soak.ReplayPlan, base uint64, runs int, memo *machine.Memo) (elapsed time.Duration, cycles uint64, allocs uint64) {
	m := machine.New(plan.HW)
	m.LoadImage(plan.Img)
	if memo != nil {
		m.SetMemo(memo)
	}
	m.Pollute(measure.PolluteSeed(base, 0))
	for i := 0; i < simWarmups; i++ {
		m.Run(plan.Trace)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < runs; i++ {
		cycles += m.Run(plan.Trace)
	}
	elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, cycles, after.Mallocs - before.Mallocs
}

// SimReport benchmarks the naive against the memoized simulator engine
// over the four-image matrix: per configuration it analyses the
// interrupt entry's worst-case trace once (the soak machine-replay
// plan), then replays it warm `runs` times per engine from the same
// campaign-derived pollution state. Per-run simulated cycles must
// agree exactly between engines — a disagreement is an engine bug and
// fails the report rather than skewing it.
func SimReport(ctx context.Context, seed uint64, runs int) (*SimBench, error) {
	return SimReportArch(ctx, seed, runs, "")
}

// SimReportArch is SimReport on an explicit hardware backend
// ("arm1136", "cva6rt", ...; empty means ARM1136): the replayed traces
// are analysed for and simulated on that backend's timing model, with a
// backend-mixed pollution seed.
func SimReportArch(ctx context.Context, seed uint64, runs int, archID string) (*SimBench, error) {
	if runs <= 0 {
		runs = DefaultSimBenchRuns
	}
	backend, err := arch.Lookup(archID)
	if err != nil {
		return nil, fmt.Errorf("bench-sim: %w", err)
	}
	seedRoot := measure.ArchSeed(seed, backend)
	doc := &SimBench{Seed: seed, Runs: runs}
	for _, pc := range ProbeConfigs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plan, err := soak.BuildReplayPlan(ctx, soak.Config{
			Label:  pc.Name,
			Arch:   archID,
			Kernel: pc.Kernel,
			Pinned: pc.Pinned,
		})
		if err != nil {
			return nil, fmt.Errorf("bench-sim %s: %w", pc.Name, err)
		}
		base := measure.CampaignSeed(seedRoot, pc.Name)

		nElapsed, nCycles, nAllocs := simEngine(plan, base, runs, nil)
		memo := machine.NewMemo()
		mElapsed, mCycles, mAllocs := simEngine(plan, base, runs, memo)
		if nCycles != mCycles {
			return nil, fmt.Errorf("bench-sim %s: engines disagree: naive %d cycles, memo %d",
				pc.Name, nCycles, mCycles)
		}
		st := memo.Stats()
		e := SimBenchEntry{
			Label:             pc.Name,
			Arch:              backend.ID,
			Pinned:            pc.Pinned,
			TraceBlocks:       len(plan.Trace),
			Runs:              runs,
			CyclesPerRun:      nCycles / uint64(runs),
			NaiveOpsPerSec:    perSec(float64(runs), nElapsed),
			MemoOpsPerSec:     perSec(float64(runs), mElapsed),
			NaiveCyclesPerSec: perSec(float64(nCycles), nElapsed),
			MemoCyclesPerSec:  perSec(float64(mCycles), mElapsed),
			NaiveAllocsPerOp:  float64(nAllocs) / float64(runs),
			MemoAllocsPerOp:   float64(mAllocs) / float64(runs),
			MemoHits:          st.Hits,
			MemoMisses:        st.Misses,
			HitRate:           st.HitRate(),
			RunHits:           st.RunHits,
			RunMisses:         st.RunMisses,
		}
		if mElapsed > 0 {
			e.Speedup = float64(nElapsed) / float64(mElapsed)
		}
		doc.Configs = append(doc.Configs, e)
	}
	return doc, nil
}

// perSec divides a count by a duration, guarding the zero-duration
// corner of very fast loops.
func perSec(n float64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return n / d.Seconds()
}

// FormatSimBench renders the engine benchmark as the text table
// cmd/kzm-sim prints.
func FormatSimBench(doc *SimBench) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulator engine benchmark: %d warm interrupt-path replays per engine (seed %d)\n",
		doc.Runs, doc.Seed)
	fmt.Fprintf(&b, "%-24s %12s %12s %9s %8s %9s %9s\n",
		"config", "naive Mcyc/s", "memo Mcyc/s", "speedup", "hit%", "allocs/op", "blocks")
	for _, e := range doc.Configs {
		fmt.Fprintf(&b, "%-24s %12.1f %12.1f %8.1fx %7.1f%% %9.2f %9d\n",
			e.Label, e.NaiveCyclesPerSec/1e6, e.MemoCyclesPerSec/1e6,
			e.Speedup, 100*e.HitRate, e.MemoAllocsPerOp, e.TraceBlocks)
	}
	return b.String()
}

// WriteSimBench serialises the engine benchmark as the BENCH_sim.json
// artifact.
func WriteSimBench(w io.Writer, doc *SimBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
