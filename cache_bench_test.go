package verikern

import (
	"context"
	"testing"
	"time"
)

// BenchmarkExperimentMatrixCold runs the full experiment matrix (both
// variants × pin settings × four hardware configs × four entry points)
// against an empty artifact cache every iteration — the cost the
// drivers paid before content-addressed caching.
func BenchmarkExperimentMatrixCold(b *testing.B) {
	defer ResetAnalysisCache()
	for i := 0; i < b.N; i++ {
		ResetAnalysisCache()
		if _, err := ExperimentMatrix(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentMatrixWarm runs the same matrix with the cache
// kept warm: every Result is served content-addressed from memory.
func BenchmarkExperimentMatrixWarm(b *testing.B) {
	defer ResetAnalysisCache()
	ResetAnalysisCache()
	if _, err := ExperimentMatrix(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentMatrix(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWarmMatrixFasterThanCold is the acceptance check for the
// artifact cache: re-running the full experiment matrix warm must be
// measurably faster than the cold run, while producing identical
// bounds for every cell.
func TestWarmMatrixFasterThanCold(t *testing.T) {
	ResetAnalysisCache()
	defer ResetAnalysisCache()

	ctx := context.Background()
	coldStart := time.Now()
	cold, err := ExperimentMatrix(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coldTime := time.Since(coldStart)

	warmStart := time.Now()
	warm, err := ExperimentMatrix(ctx)
	if err != nil {
		t.Fatal(err)
	}
	warmTime := time.Since(warmStart)

	if len(cold) != len(warm) || len(cold) == 0 {
		t.Fatalf("matrix sizes differ: cold %d, warm %d", len(cold), len(warm))
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Errorf("cell %d differs: cold %+v, warm %+v", i, cold[i], warm[i])
		}
	}

	stats := AnalysisCacheStats()
	if stats.Hits < uint64(len(cold)) {
		t.Errorf("warm run hit the cache %d times, want at least one per cell (%d)",
			stats.Hits, len(cold))
	}

	// The warm run does no CFG building, classification, ILP solving
	// or reconstruction — just key hashing and map lookups. Require a
	// 2x margin so scheduler noise cannot flake the assertion; in
	// practice the gap is far larger.
	if warmTime*2 >= coldTime {
		t.Errorf("warm matrix (%v) not measurably faster than cold (%v)", warmTime, coldTime)
	}
	t.Logf("cold %v, warm %v (%.0fx), cache: %d hits / %d misses / %d entries",
		coldTime, warmTime, float64(coldTime)/float64(warmTime),
		stats.Hits, stats.Misses, stats.Entries)
}
