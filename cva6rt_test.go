package verikern

import (
	"context"
	"testing"

	"verikern/internal/arch"
	"verikern/internal/kernel"
	"verikern/internal/probe"
	"verikern/internal/soak"
)

// TestCVA6RTEndToEnd is the acceptance gate for the second backend:
// soak and probe campaigns on cva6rt, across the preemption × pinning
// matrix, must complete with every observed maximum within its
// computed bound — the same soundness contract the ARM1136 pipeline
// honours, on a core with different timing, caches and a nonzero
// architectural interrupt-entry cost.
func TestCVA6RTEndToEnd(t *testing.T) {
	ctx := context.Background()
	for _, pp := range []bool{false, true} {
		for _, pin := range []bool{false, true} {
			kcfg := kernel.Modern()
			kcfg.CheckInvariants = false
			kcfg.PreemptionPoints = pp

			rep, err := soak.Run(ctx, soak.Config{
				Label:  "cva6rt-e2e",
				Arch:   arch.CVA6RTID,
				Seed:   7,
				Ops:    400,
				Kernel: kcfg,
				Pinned: pin,
			})
			if err != nil {
				t.Fatalf("soak pp=%v pin=%v: %v", pp, pin, err)
			}
			if rep.Bound.Cycles == 0 {
				t.Fatalf("soak pp=%v pin=%v: no bound resolved", pp, pin)
			}
			if rep.Bound.Violations != 0 {
				t.Errorf("soak pp=%v pin=%v: %d samples over the %d-cycle bound (max %d)",
					pp, pin, rep.Bound.Violations, rep.Bound.Cycles, rep.MaxLatency)
			}
			if rep.Arch != arch.CVA6RTID {
				t.Errorf("soak pp=%v pin=%v: report arch %q", pp, pin, rep.Arch)
			}

			prep, err := probe.Run(ctx, probe.Config{
				Label:  "cva6rt-e2e",
				Arch:   arch.CVA6RTID,
				Seed:   7,
				Budget: 24,
				Kernel: kcfg,
				Pinned: pin,
			})
			if err != nil {
				t.Fatalf("probe pp=%v pin=%v: %v", pp, pin, err)
			}
			if prep.Violations != 0 {
				t.Errorf("probe pp=%v pin=%v: %d observations exceeded their bound", pp, pin, prep.Violations)
			}
			if prep.Arch != arch.CVA6RTID {
				t.Errorf("probe pp=%v pin=%v: report arch %q", pp, pin, prep.Arch)
			}
			for _, e := range prep.Entries {
				if e.BoundCycles == 0 {
					t.Errorf("probe pp=%v pin=%v %s: zero bound", pp, pin, e.Name)
				}
				if e.ObservedMax > e.BoundCycles {
					t.Errorf("probe pp=%v pin=%v %s: observed %d > bound %d",
						pp, pin, e.Name, e.ObservedMax, e.BoundCycles)
				}
			}
		}
	}
}

// TestCVA6RTBoundIncludesEntryCost: the composed interrupt-response
// bound on cva6rt must carry the backend's architectural entry cost on
// top of the analysed syscall + interrupt paths — the constant the
// direct-vectoring design contributes and ARM1136 (cost zero, modelled
// in the image) does not.
func TestCVA6RTBoundIncludesEntryCost(t *testing.T) {
	ctx := context.Background()
	im, err := BuildImageArch(Modern, false, arch.CVA6RTID)
	if err != nil {
		t.Fatal(err)
	}
	hw := Hardware{Arch: arch.CVA6RTID}
	sys, err := im.AnalyzeContext(ctx, hw, Syscall)
	if err != nil {
		t.Fatal(err)
	}
	irq, err := im.AnalyzeContext(ctx, hw, Interrupt)
	if err != nil {
		t.Fatal(err)
	}
	kcfg := kernel.Modern()
	kcfg.CheckInvariants = false
	bound, err := soak.ComputeBound(ctx, soak.Config{Arch: arch.CVA6RTID, Kernel: kcfg})
	if err != nil {
		t.Fatal(err)
	}
	entry := arch.MustLookup(arch.CVA6RTID).InterruptEntryCost(hw)
	if entry == 0 {
		t.Fatal("cva6rt entry cost is zero; the composition term is untested")
	}
	if want := sys.Cycles + irq.Cycles + entry; bound != want {
		t.Fatalf("composed bound %d != syscall %d + interrupt %d + entry %d",
			bound, sys.Cycles, irq.Cycles, entry)
	}
}

// TestAnalyzeRejectsBackendMismatch: analysing an image under a
// hardware config for a different backend is a category error the
// pipeline must refuse, not silently mis-time.
func TestAnalyzeRejectsBackendMismatch(t *testing.T) {
	im, err := BuildImageArch(Modern, false, arch.CVA6RTID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := im.AnalyzeContext(context.Background(), Hardware{}, Interrupt); err == nil {
		t.Fatal("cva6rt image analysed under an arm1136 hardware config without error")
	}
}
