package verikern

import (
	"context"
	"testing"

	"verikern/internal/arch"
	"verikern/internal/kbin"
	"verikern/internal/passes"
	"verikern/internal/wcet"
)

// TestArchCacheInvalidation is the stale-result guard for backend
// switching: one shared artifact cache must never serve a result
// computed under one backend to an analysis running under another. The
// backend identity reaches the content-addressed keys through two
// routes — the image fingerprint (kimage hashes the backend key) and
// the analyser's hardware fingerprint — and this test exercises the
// full path: same logical kernel, same entry point, same shared cache,
// two backends.
func TestArchCacheInvalidation(t *testing.T) {
	ctx := context.Background()
	cache := passes.NewCache(nil)
	analyse := func(archID string) uint64 {
		t.Helper()
		img, cons, err := kbin.Build(kbin.Options{Modernised: true, Arch: archID})
		if err != nil {
			t.Fatalf("build %q: %v", archID, err)
		}
		a := wcet.New(img, arch.Config{Arch: archID})
		a.AddConstraints(cons...)
		a.Cache = cache
		res, err := a.AnalyzeContext(ctx, kbin.EntryInterrupt)
		if err != nil {
			t.Fatalf("analyse %q: %v", archID, err)
		}
		return res.Cycles
	}

	armWarm := analyse("")
	statsAfterARM := cache.Stats()
	cvaShared := analyse(arch.CVA6RTID)
	if cvaShared == armWarm {
		t.Fatalf("arm1136 and cva6rt interrupt bounds both %d through a shared cache: a backend switch was served a stale artifact", armWarm)
	}
	// The cva6rt run must have missed (not hit) on every whole-result
	// lookup the arm1136 run populated.
	if st := cache.Stats(); st.Misses == statsAfterARM.Misses {
		t.Fatalf("cva6rt analysis recorded no cache misses after an arm1136 run (stats %+v): its keys collide with arm1136's", st)
	}

	// Cross-check against an unshared cache: the shared-cache cva6rt
	// result must equal a from-scratch cva6rt analysis.
	fresh := passes.NewCache(nil)
	img, cons, err := kbin.Build(kbin.Options{Modernised: true, Arch: arch.CVA6RTID})
	if err != nil {
		t.Fatal(err)
	}
	a := wcet.New(img, arch.Config{Arch: arch.CVA6RTID})
	a.AddConstraints(cons...)
	a.Cache = fresh
	res, err := a.AnalyzeContext(ctx, kbin.EntryInterrupt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != cvaShared {
		t.Fatalf("cva6rt bound through shared cache = %d, from scratch = %d: the shared cache corrupted the analysis", cvaShared, res.Cycles)
	}

	// And arm1136 again through the shared cache: still the warm value.
	if again := analyse(""); again != armWarm {
		t.Fatalf("arm1136 bound changed across a cva6rt analysis on the same cache: %d then %d", armWarm, again)
	}
}

// TestImageFingerprintCarriesBackend: identically-built kernels on
// different backends must have different fingerprints — the property
// the pass-cache keys inherit.
func TestImageFingerprintCarriesBackend(t *testing.T) {
	armImg, _, err := kbin.Build(kbin.Options{Modernised: true})
	if err != nil {
		t.Fatal(err)
	}
	cvaImg, _, err := kbin.Build(kbin.Options{Modernised: true, Arch: arch.CVA6RTID})
	if err != nil {
		t.Fatal(err)
	}
	if armImg.Fingerprint() == cvaImg.Fingerprint() {
		t.Fatalf("arm1136 and cva6rt images share fingerprint %s", armImg.Fingerprint())
	}
}
