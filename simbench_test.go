package verikern

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestSimReportEnginesAgree is the CI smoke for kzm-sim -bench-sim: a
// small-run SimReport must cover the full image matrix, agree on
// simulated cycles between engines (SimReport fails internally
// otherwise), serve from the memo, and round-trip through the
// BENCH_sim.json encoding.
func TestSimReportEnginesAgree(t *testing.T) {
	doc, err := SimReport(context.Background(), 42, 60)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ProbeConfigs()); len(doc.Configs) != want {
		t.Fatalf("report covers %d configs, want %d", len(doc.Configs), want)
	}
	for _, e := range doc.Configs {
		if e.CyclesPerRun == 0 {
			t.Errorf("%s: zero cycles per run", e.Label)
		}
		if e.TraceBlocks == 0 {
			t.Errorf("%s: empty worst-case trace", e.Label)
		}
		if e.MemoHits == 0 {
			t.Errorf("%s: memo never hit on a warm replay loop", e.Label)
		}
		if e.HitRate <= 0.5 {
			t.Errorf("%s: warm hit rate %.2f, want > 0.5", e.Label, e.HitRate)
		}
		if e.RunHits == 0 {
			t.Errorf("%s: run-level memo never hit on identical warm replays", e.Label)
		}
	}

	var buf bytes.Buffer
	if err := WriteSimBench(&buf, doc); err != nil {
		t.Fatal(err)
	}
	var back SimBench
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_sim.json does not parse back: %v", err)
	}
	if back.Seed != doc.Seed || len(back.Configs) != len(doc.Configs) {
		t.Fatalf("round-trip mangled the document: %+v", back)
	}
	if FormatSimBench(doc) == "" {
		t.Fatal("empty benchmark table")
	}
}

// TestMemoNotSlower is the performance regression guard: on the warm
// interrupt-path replay workload the memoized engine must not be
// slower than the naive engine. The acceptance target is >=3x
// (BENCH_sim.json reports ~an order of magnitude); the test asserts
// only a 2x-noise-margin floor — memo wall time at most twice naive —
// so CI scheduling jitter cannot flake it while a real regression
// (memo slower than naive) still fails.
func TestMemoNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	doc, err := SimReport(context.Background(), 7, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.Configs {
		if e.Speedup < 0.5 {
			t.Errorf("%s: memo %.2fx vs naive — memoized engine has regressed far below naive",
				e.Label, e.Speedup)
		}
		t.Logf("%s: %.1fx speedup, %.1f%% hit rate, %d run hits, %.2f allocs/op (memo) vs %.2f (naive)",
			e.Label, e.Speedup, 100*e.HitRate, e.RunHits, e.MemoAllocsPerOp, e.NaiveAllocsPerOp)
	}
}
