# verikern — reproduction of "Improving Interrupt Response Time in a
# Verifiable Protected Microkernel" (EuroSys 2012).

GO ?= go

.PHONY: all build test bench paper vet fmt cover examples

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
paper:
	$(GO) run ./cmd/paper

ablations:
	$(GO) run ./cmd/paper -ablations

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

cover:
	$(GO) test -cover ./...

examples:
	@for e in quickstart mixedcrit rt-task badge-revoke adversary wcet-analysis; do \
		echo "== examples/$$e =="; $(GO) run ./examples/$$e; echo; \
	done
