// Package verikern reproduces "Improving Interrupt Response Time in a
// Verifiable Protected Microkernel" (Blackham, Shi & Heiser, EuroSys
// 2012) as an executable system: a functional model of an seL4-style
// protected microkernel with the paper's preemption points and data-
// structure redesigns, a cycle-level simulator of its ARM1136/KZM
// evaluation platform, and a from-scratch WCET analysis pipeline
// (whole-program CFG, conservative cache classification, IPET over a
// built-in ILP solver) that computes the interrupt-response bounds the
// paper reports.
//
// The package is the public face of the repository: it exposes the two
// kernel variants ("original" and "modernised"), the platform
// configurations the paper evaluates (L2 on/off, branch predictor
// on/off, L1 way pinning), and drivers that regenerate every table and
// figure of the paper's evaluation (Tables 1–2, Figures 8–9, and the
// §6 headline numbers).
package verikern

import (
	"context"
	"fmt"
	"io"

	"verikern/internal/arch"
	"verikern/internal/kbin"
	"verikern/internal/kernel"
	"verikern/internal/kimage"
	"verikern/internal/kobj"
	"verikern/internal/konfig"
	"verikern/internal/measure"
	"verikern/internal/obs"
	"verikern/internal/passes"
	"verikern/internal/sched"
	"verikern/internal/vspace"
	"verikern/internal/wcet"
)

// Variant selects a kernel design generation.
type Variant int

// Kernel variants.
const (
	// Original is the pre-modification kernel: lazy scheduling,
	// ASID-based address spaces, no preemption points.
	Original Variant = iota
	// Modern applies the paper's changes: Benno scheduling with
	// bitmaps, shadow page tables, preemption points in all
	// long-running operations.
	Modern
)

// String returns the variant name.
func (v Variant) String() string {
	if v == Original {
		return "original"
	}
	return "modern"
}

// Hardware is the evaluation-platform configuration (a 532 MHz
// ARM1136 on a KZM board, §5.1).
type Hardware = arch.Config

// EntryPoint names a kernel exception vector.
type EntryPoint string

// The four analysed kernel entry points (§5.2).
const (
	Syscall     EntryPoint = kbin.EntrySyscall
	Interrupt   EntryPoint = kbin.EntryInterrupt
	PageFault   EntryPoint = kbin.EntryPageFault
	UndefinedIn EntryPoint = kbin.EntryUndefined
)

// EntryPoints lists the analysed vectors in the paper's table order.
func EntryPoints() []EntryPoint {
	return []EntryPoint{Syscall, UndefinedIn, PageFault, Interrupt}
}

// Label returns the paper's row label for an entry point.
func (e EntryPoint) Label() string {
	switch e {
	case Syscall:
		return "System call"
	case Interrupt:
		return "Interrupt"
	case PageFault:
		return "Page fault"
	case UndefinedIn:
		return "Undefined instruction"
	default:
		return string(e)
	}
}

// Image is a built kernel binary plus its infeasible-path constraints.
type Image struct {
	Img         *kimage.Image
	Constraints []wcet.UserConstraint
	Variant     Variant
	Pinned      bool
	// Arch is the hardware backend the image was linked for
	// (arch.ARM1136ID when built via BuildImage).
	Arch string
	// Metrics, when set, collects analysis-pipeline stage timings and
	// counters for every Analyze call on this image.
	Metrics *obs.Metrics
}

// pipelineMetrics, when set via ObservePipeline, is attached to every
// image built by BuildImage, so the table/figure drivers in
// experiments.go report their analysis stages without any API change.
var pipelineMetrics *obs.Metrics

// analysisCache is the process-wide artifact cache behind every
// Analyze call made through this package. Keys are content-addressed
// (image fingerprint, hardware config, constraint set, pass version),
// so separately built but identical images — the common shape of the
// experiment drivers, which rebuild images per table — share CFGs,
// classifications, ILP solutions and whole Results.
var analysisCache = passes.NewCache(nil)

// AnalysisCacheStats returns a snapshot of the shared artifact cache's
// hit/miss counters.
func AnalysisCacheStats() passes.CacheStats { return analysisCache.Stats() }

// ResetAnalysisCache drops every in-memory artifact and zeroes the
// counters; an attached disk store keeps its artifacts (content-
// addressed keys never go stale — invalidation is by key change).
func ResetAnalysisCache() { analysisCache.Reset() }

// SetAnalysisCacheDir attaches an on-disk artifact store at dir, so
// serialisable artifacts (classifications, ILP solutions) survive
// across processes. An empty dir detaches the store.
func SetAnalysisCacheDir(dir string) error {
	if dir == "" {
		analysisCache.SetDisk(nil)
		return nil
	}
	s, err := passes.NewDiskStore(dir)
	if err != nil {
		return err
	}
	analysisCache.SetDisk(s)
	return nil
}

// ObservePipeline installs a metrics registry that every subsequent
// BuildImage attaches to its image. Pass nil to disable. The drivers in
// this package (Table1, Table2, Fig8, ...) build images internally;
// this is how callers like cmd/paper see their pipeline stages.
func ObservePipeline(m *obs.Metrics) { pipelineMetrics = m }

// LatticePoint is a typed configuration-lattice point: every paper
// feature as an independently toggleable key, validated by the konfig
// rule engine. The legacy Variant/Hardware matrices in this package are
// named points of this lattice (see konfig.LegacySoakMatrix and
// friends); the sweep drivers walk its feasible region.
type LatticePoint = konfig.Point

// DefaultLatticePoint is the backend's modernised-kernel lattice point
// (every paper improvement on, no pinning, default geometry).
func DefaultLatticePoint(archID string) (LatticePoint, error) {
	return konfig.DefaultPoint(archID)
}

// ParetoBench is the BENCH_pareto.json document emitted by ParetoSweep.
type ParetoBench = konfig.ParetoBench

// ParetoSweep walks each backend's DefaultSpace sub-lattice through the
// process-wide analysis cache and returns the per-entry-point
// WCET-vs-throughput Pareto frontiers. For a fixed seed and op budget
// the document is byte-stable across runs and worker counts.
func ParetoSweep(ctx context.Context, archIDs []string, seed, ops uint64, workers int) (*ParetoBench, error) {
	if len(archIDs) == 0 {
		archIDs = Architectures()
	}
	doc := &ParetoBench{Seed: seed, Ops: ops}
	for _, id := range archIDs {
		sp, err := konfig.DefaultSpace(id)
		if err != nil {
			return nil, err
		}
		sw, err := konfig.Sweep(ctx, analysisCache, sp, seed, ops, workers)
		if err != nil {
			return nil, err
		}
		doc.Archs = append(doc.Archs, *sw)
	}
	return doc, nil
}

// WriteParetoBench serialises a sweep document as the byte-stable
// BENCH_pareto.json artifact.
func WriteParetoBench(w io.Writer, doc *ParetoBench) error {
	return konfig.WriteParetoBench(w, doc)
}

// BuildImage constructs the synthetic kernel binary for a variant,
// optionally with the §4 pin set, linked for the default ARM1136/KZM
// backend.
func BuildImage(v Variant, pinned bool) (*Image, error) {
	return BuildImageArch(v, pinned, "")
}

// BuildImageArch is BuildImage for an explicit hardware backend
// ("arm1136", "cva6rt", ...; empty means ARM1136). The image's layout,
// pin sets and analysis all follow the backend's address map and cache
// geometry; analyse it under a Hardware whose Arch field matches.
func BuildImageArch(v Variant, pinned bool, archID string) (*Image, error) {
	img, cons, err := kbin.Build(kbin.Options{Modernised: v == Modern, Pinned: pinned, Arch: archID})
	if err != nil {
		return nil, err
	}
	return &Image{Img: img, Constraints: cons, Variant: v, Pinned: pinned,
		Arch: img.Backend().ID, Metrics: pipelineMetrics}, nil
}

// BuildImagePoint builds the kernel image a validated lattice point
// selects, plus the Hardware to analyse it under (TCM bases resolved
// from the image layout when the point enables the TCM). An infeasible
// point fails with the rule engine's named diagnostics.
func BuildImagePoint(p LatticePoint) (*Image, Hardware, error) {
	if err := p.Check(); err != nil {
		return nil, Hardware{}, err
	}
	img, cons, err := kbin.Build(p.KbinOptions())
	if err != nil {
		return nil, Hardware{}, err
	}
	hw := p.Hardware()
	if p.TCMEnabled {
		itcm, dtcm, err := kbin.TCMConfig(img)
		if err != nil {
			return nil, Hardware{}, err
		}
		hw.ITCMBase, hw.DTCMBase = itcm, dtcm
	}
	v := Original
	if p.PreemptionPoints() {
		v = Modern
	}
	return &Image{Img: img, Constraints: cons, Variant: v, Pinned: p.Pinned(),
		Arch: img.Backend().ID, Metrics: pipelineMetrics}, hw, nil
}

// Architectures lists the registered hardware backend ids, sorted.
func Architectures() []string { return arch.BackendIDs() }

// Bound is one entry point's analysis outcome.
type Bound struct {
	Entry EntryPoint
	// Cycles is the computed WCET upper bound; Micros its value on
	// the 532 MHz clock.
	Cycles uint64
	Micros float64
	// Result carries the full analysis artefacts (CFG, worst path,
	// ILP sizes, timings).
	Result *wcet.Result
}

// analyzer assembles the wcet.Analyzer every facade entry point uses:
// the image's constraints and metrics, plus the shared artifact cache.
func (im *Image) analyzer(hw Hardware) *wcet.Analyzer {
	a := wcet.New(im.Img, hw)
	a.AddConstraints(im.Constraints...)
	a.Metrics = im.Metrics
	a.Cache = analysisCache
	return a
}

// Analyze computes the WCET bound of one entry point under the given
// hardware configuration.
func (im *Image) Analyze(hw Hardware, e EntryPoint) (Bound, error) {
	return im.AnalyzeContext(context.Background(), hw, e)
}

// AnalyzeContext is Analyze under a context: cancellation is honoured
// between analysis passes.
func (im *Image) AnalyzeContext(ctx context.Context, hw Hardware, e EntryPoint) (Bound, error) {
	r, err := im.analyzer(hw).AnalyzeContext(ctx, string(e))
	if err != nil {
		return Bound{}, err
	}
	return Bound{Entry: e, Cycles: r.Cycles, Micros: r.Micros, Result: r}, nil
}

// AnalyzeAll analyses every entry point of the image over a bounded
// worker pool and returns the bounds in the image's deterministic
// entry order. workers <= 0 means GOMAXPROCS.
func (im *Image) AnalyzeAll(ctx context.Context, hw Hardware, workers int) ([]Bound, error) {
	a := im.analyzer(hw)
	a.Workers = workers
	results, err := a.AnalyzeAllParallelOrdered(ctx)
	if err != nil {
		return nil, err
	}
	bounds := make([]Bound, len(results))
	for i, r := range results {
		bounds[i] = Bound{Entry: EntryPoint(r.Entry), Cycles: r.Cycles, Micros: r.Micros, Result: r}
	}
	return bounds, nil
}

// AnalyzeWithLP is Analyze but additionally captures the generated
// integer linear program in Result.LPText — the artefact the paper's
// toolchain handed to its off-the-shelf solver (§5.2).
func (im *Image) AnalyzeWithLP(hw Hardware, e EntryPoint) (Bound, error) {
	a := im.analyzer(hw)
	a.KeepLP = true
	r, err := a.Analyze(string(e))
	if err != nil {
		return Bound{}, err
	}
	return Bound{Entry: e, Cycles: r.Cycles, Micros: r.Micros, Result: r}, nil
}

// VerifyLoopBounds cross-checks the image's loop annotations against
// the §5.3 model-checked bounds, returning an error for any annotation
// the models prove unsound.
func (im *Image) VerifyLoopBounds() error {
	models, err := kbin.LoopModels(kbin.Options{Modernised: im.Variant == Modern, Pinned: im.Pinned, Arch: im.Arch}, im.Img)
	if err != nil {
		return err
	}
	return wcet.VerifyBounds(im.Img, models)
}

// Observe replays a bound's worst-case path on the simulated hardware
// from `runs` adversarial polluted cache states and reports the worst
// observation (§5.4).
func (im *Image) Observe(hw Hardware, b Bound, runs int) measure.Observation {
	return measure.Observe(im.Img, hw, b.Result.Trace, runs)
}

// --- Functional kernel facade ---

// System wraps a booted functional kernel.
type System struct {
	*kernel.Kernel
}

// KernelConfig re-exports the kernel configuration.
type KernelConfig = kernel.Config

// ModernKernel returns the improved kernel's configuration.
func ModernKernel() KernelConfig { return kernel.Modern() }

// OriginalKernel returns the pre-modification configuration.
func OriginalKernel() KernelConfig { return kernel.Original() }

// Boot starts a functional kernel.
func Boot(cfg KernelConfig) (*System, error) {
	k, err := kernel.New(cfg)
	if err != nil {
		return nil, err
	}
	return &System{Kernel: k}, nil
}

// BootVariant boots the functional kernel matching an analysis
// variant.
func BootVariant(v Variant) (*System, error) {
	if v == Modern {
		return Boot(kernel.Modern())
	}
	return Boot(kernel.Original())
}

// Re-exported object and subsystem types, forming the public API
// surface for examples and downstream users.
type (
	// TCB is a thread control block.
	TCB = kobj.TCB
	// Endpoint is an IPC endpoint.
	Endpoint = kobj.Endpoint
	// Notification is an asynchronous signalling object.
	Notification = kobj.Notification
	// ObjType enumerates kernel object types.
	ObjType = kobj.ObjType
)

// Re-exported object type constants.
const (
	TypeTCB           = kobj.TypeTCB
	TypeEndpoint      = kobj.TypeEndpoint
	TypeNotification  = kobj.TypeNotification
	TypeCNode         = kobj.TypeCNode
	TypeFrame         = kobj.TypeFrame
	TypePageTable     = kobj.TypePageTable
	TypePageDirectory = kobj.TypePageDirectory
)

// SchedulerKind re-exports the scheduler designs.
type SchedulerKind = sched.Kind

// Scheduler designs (§3.1–3.2).
const (
	LazyScheduler   = sched.Lazy
	BennoScheduler  = sched.Benno
	BitmapScheduler = sched.BennoBitmap
)

// VSpaceDesign re-exports the address-space designs (§3.6).
type VSpaceDesign = vspace.Design

// Address-space designs.
const (
	ASIDVSpace   = vspace.ASIDDesign
	ShadowVSpace = vspace.ShadowDesign
)

// CyclesToMicros converts simulated cycles to microseconds at 532 MHz.
func CyclesToMicros(c uint64) float64 { return arch.CyclesToMicros(c) }

// BuildAdversarialCSpace constructs the Fig. 7 worst-case capability
// space — a chain of radix-1 CNodes so that decoding consumes one
// address bit per level — gives it to the thread as its capability
// space, and returns a capability address whose decode traverses all
// `levels` levels to reach a fresh endpoint. The paper's worst-case
// system call decodes such an address up to 11 times (§6.1).
func (s *System) BuildAdversarialCSpace(t *TCB, levels int) (uint32, error) {
	if levels < 1 || levels > 32 {
		return 0, fmt.Errorf("verikern: levels must be in [1,32], got %d", levels)
	}
	mgr := s.Objects()
	epObjs, err := mgr.Retype(s.RootUntyped(), kobj.TypeEndpoint, 0, 1)
	if err != nil {
		return 0, err
	}
	leaf := kobj.Cap{Type: kobj.CapEndpoint, Obj: epObjs[0], Rights: kobj.RightsAll}
	next := leaf
	for l := 0; l < levels; l++ {
		guard := uint8(0)
		if l == levels-1 {
			// The outermost CNode absorbs the remaining
			// address bits in its guard so the address is
			// exactly 32 bits.
			guard = uint8(32 - levels)
		}
		cnObjs, err := mgr.Retype(s.RootUntyped(), kobj.TypeCNode, 1, 1)
		if err != nil {
			return 0, err
		}
		cn := cnObjs[0].(*kobj.CNode)
		cn.Name = fmt.Sprintf("adv-l%d", levels-l)
		cn.GuardBits = guard
		cn.Slots[1].Cap = next
		next = kobj.Cap{Type: kobj.CapCNode, Obj: cn, Rights: kobj.RightsAll}
	}
	t.CSpaceRoot = next
	// Address: guard zeros, then bit 1 at every level.
	var addr uint32
	for l := 0; l < levels; l++ {
		addr = addr<<1 | 1
	}
	return addr, nil
}
