package verikern

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"verikern/internal/probe"
)

// The ARM1136 baseline golden pins the analysis and observatory outputs
// of the default backend across the Backend refactor: WCET bounds for
// every entry point over the hardware matrix, the soak matrix's latency
// digests, and a directed-probe campaign's observed maxima. The file
// was captured on the pre-refactor tree; any divergence means the
// ARM1136 backend no longer reproduces the hard-wired model
// byte-for-byte. Regenerate (only when a deliberate model change is
// made) with:
//
//	ARM1136_BASELINE_UPDATE=1 go test -run TestARM1136Baseline .
const arm1136BaselinePath = "testdata/goldens/arm1136_baseline.json"

// baselineDoc is the golden document. All fields are exact integers or
// label strings, so the comparison is exact.
type baselineDoc struct {
	// Bounds maps "variant/pinned/hwLabel/entry" -> WCET cycles.
	Bounds map[string]uint64 `json:"bounds"`
	// Soak maps "label/field" -> value for the 4-config soak matrix
	// at seed 1, 400 ops, 2 workers.
	Soak map[string]uint64 `json:"soak"`
	// Probe maps "entry/field" -> value for one probe campaign
	// (benno+preempt+pinned, seed 7, budget 24).
	Probe map[string]uint64 `json:"probe"`
}

// baselineHardware is the hardware sweep the baseline pins: the paper's
// evaluation axes (L2, branch predictor, pinning).
func baselineHardware() []struct {
	Label string
	HW    Hardware
} {
	return []struct {
		Label string
		HW    Hardware
	}{
		{"base", Hardware{}},
		{"pin1", Hardware{PinnedL1Ways: 1}},
		{"l2", Hardware{L2Enabled: true}},
		{"l2+bpred", Hardware{L2Enabled: true, BranchPredictor: true}},
	}
}

func collectBaseline(t *testing.T) *baselineDoc {
	t.Helper()
	ctx := context.Background()
	doc := &baselineDoc{
		Bounds: map[string]uint64{},
		Soak:   map[string]uint64{},
		Probe:  map[string]uint64{},
	}

	for _, v := range []Variant{Original, Modern} {
		for _, pinned := range []bool{false, true} {
			im, err := BuildImage(v, pinned)
			if err != nil {
				t.Fatalf("BuildImage(%v,%v): %v", v, pinned, err)
			}
			for _, hc := range baselineHardware() {
				hw := hc.HW
				if pinned && hw.PinnedL1Ways == 0 && hc.Label == "pin1" {
					// pin1 row only meaningful with a pinned image;
					// keep it for both to pin behaviour anyway.
				}
				bounds, err := im.AnalyzeAll(ctx, hw, 0)
				if err != nil {
					t.Fatalf("AnalyzeAll(%v,%v,%s): %v", v, pinned, hc.Label, err)
				}
				for _, b := range bounds {
					key := fmt.Sprintf("%v/pin=%v/%s/%s", v, pinned, hc.Label, b.Entry)
					doc.Bounds[key] = b.Cycles
				}
			}
		}
	}

	reps, err := SoakReport(ctx, 1, 400)
	if err != nil {
		t.Fatalf("SoakReport: %v", err)
	}
	for _, r := range reps {
		doc.Soak[r.Label+"/ops"] = r.Ops
		doc.Soak[r.Label+"/simcycles"] = r.SimCycles
		doc.Soak[r.Label+"/maxlatency"] = r.MaxLatency
		doc.Soak[r.Label+"/irq_count"] = r.Snapshot.IRQ.Count
		doc.Soak[r.Label+"/irq_min"] = r.Snapshot.IRQ.Min
		doc.Soak[r.Label+"/irq_max"] = r.Snapshot.IRQ.Max
		doc.Soak[r.Label+"/irq_p99"] = r.Snapshot.IRQ.P99
		doc.Soak[r.Label+"/bound"] = r.Bound.Cycles
		doc.Soak[r.Label+"/violations"] = r.Bound.Violations
	}

	prep, err := probe.Run(ctx, probe.Config{
		Label:  "benno+preempt+pinned",
		Seed:   7,
		Budget: 24,
		Kernel: ModernKernel(),
		Pinned: true,
	})
	if err != nil {
		t.Fatalf("probe.Run: %v", err)
	}
	for _, e := range prep.Entries {
		doc.Probe[e.Name+"/observed"] = e.ObservedMax
		doc.Probe[e.Name+"/bound"] = e.BoundCycles
	}
	doc.Probe["violations"] = prep.Violations
	return doc
}

// TestARM1136Baseline is the post-refactor differential gate: the
// ARM1136 backend must reproduce the pre-refactor hard-wired model's
// WCET results, soak digests and probe observations exactly.
func TestARM1136Baseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix baseline: skipped in -short")
	}
	got := collectBaseline(t)

	if os.Getenv("ARM1136_BASELINE_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(arm1136BaselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(arm1136BaselinePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bounds, %d soak fields, %d probe fields)",
			arm1136BaselinePath, len(got.Bounds), len(got.Soak), len(got.Probe))
		return
	}

	data, err := os.ReadFile(arm1136BaselinePath)
	if err != nil {
		t.Fatalf("reading baseline (regenerate with ARM1136_BASELINE_UPDATE=1): %v", err)
	}
	var want baselineDoc
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	diff := func(section string, want, got map[string]uint64) {
		for k, w := range want {
			g, ok := got[k]
			if !ok {
				t.Errorf("%s[%q]: missing from current output", section, k)
			} else if g != w {
				t.Errorf("%s[%q] = %d, baseline %d", section, k, g, w)
			}
		}
		for k := range got {
			if _, ok := want[k]; !ok {
				t.Errorf("%s[%q]: not in baseline", section, k)
			}
		}
	}
	diff("bounds", want.Bounds, got.Bounds)
	diff("soak", want.Soak, got.Soak)
	diff("probe", want.Probe, got.Probe)
}
