package verikern

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestSoakReportMatrix drives the full latency-observatory sweep at a
// small op budget and checks the acceptance property end to end: every
// configuration stays within its own computed WCET bound, and the
// artifact serialisation round-trips.
func TestSoakReportMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the WCET pipeline four times")
	}
	const seed, ops = 42, 600
	reps, err := SoakReport(context.Background(), seed, ops)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := SoakConfigs()
	if len(reps) != len(cfgs) {
		t.Fatalf("got %d reports for %d configs", len(reps), len(cfgs))
	}
	for i, r := range reps {
		if r.Label != cfgs[i].Name {
			t.Errorf("report %d label %q, want %q", i, r.Label, cfgs[i].Name)
		}
		if r.Ops != ops {
			t.Errorf("%s: ran %d ops, want %d", r.Label, r.Ops, ops)
		}
		if r.Bound.Cycles == 0 {
			t.Errorf("%s: no WCET bound resolved", r.Label)
		}
		if r.Bound.Violations != 0 {
			t.Errorf("%s: %d violations of bound %d (max %d)",
				r.Label, r.Bound.Violations, r.Bound.Cycles, r.MaxLatency)
		}
	}
	// The pinned bound is the tightest; the lazy kernel's the loosest.
	if reps[0].Bound.Cycles >= reps[1].Bound.Cycles {
		t.Errorf("pinned bound %d not tighter than unpinned %d",
			reps[0].Bound.Cycles, reps[1].Bound.Cycles)
	}
	if reps[3].Bound.Cycles <= reps[1].Bound.Cycles {
		t.Errorf("lazy bound %d not looser than modern %d",
			reps[3].Bound.Cycles, reps[1].Bound.Cycles)
	}

	var buf bytes.Buffer
	if err := WriteSoakBench(&buf, seed, ops, reps); err != nil {
		t.Fatal(err)
	}
	var doc SoakBench
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("BENCH_soak.json does not round-trip: %v", err)
	}
	if doc.Seed != seed || doc.Ops != ops || len(doc.Configs) != len(cfgs) {
		t.Errorf("document header {seed %d, ops %d, %d configs}", doc.Seed, doc.Ops, len(doc.Configs))
	}

	text := FormatSoakReport(reps)
	for _, sc := range cfgs {
		if !strings.Contains(text, sc.Name) {
			t.Errorf("formatted report missing configuration %q", sc.Name)
		}
	}
}
